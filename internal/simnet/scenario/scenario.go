// Package scenario is the harness that turns the simnet virtual
// network into whole-stack robustness tests: a Scenario declares a
// multi-node cluster topology, a fault schedule (partitions that heal,
// latency skew, bandwidth caps, drop-at-offset link flaps), and a
// churn workload; Run builds the mesh over one seeded simnet, drives
// anti-entropy rounds sequentially, and checks the built-in invariants
// — every named set converges to fingerprint equality AND to the
// ground-truth union the harness tracked while churning, no connection
// leaks after drain, and a pooled-buffer poison canary.
//
// Determinism: all workload points, peer choices, and fault samples
// derive from the run seed; rounds and the sessions within them are
// driven strictly sequentially from one goroutine; and simnet delivers
// connection events in a reproducible order. The same (scenario, seed)
// therefore yields a byte-identical event trace — which is both the
// replay-debugging story (re-run the seed, get the same failure) and a
// regression check in itself (CI diffs two runs).
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/emd"
	"repro/internal/gossip"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/netproto"
	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/session"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/store/durable"
	"repro/internal/transport"
	"repro/internal/workload"
)

// SetSpec declares one named set. In the default (static) mode every
// node hosts every set; in Gossip mode the set is a catalog entry and
// only its ring-assigned owners host it.
type SetSpec struct {
	// Name is the set's namespace ("" = the default set).
	Name string
	// Base is the number of shared points every node starts with.
	Base int
	// PerNode is the number of node-private extra points (the initial
	// divergence anti-entropy must repair).
	PerNode int
	// EMD, when true, maintains the live EMD sketch (exercising the
	// delta/full pull tier on top of exact repair).
	EMD bool
	// Capacity bounds the set (default 4096; EMD sketch capacity).
	Capacity int
}

// Fault is one scheduled fault-schedule entry, applied at the start of
// its round. From/To are node indices. The "kill" and "restart" kinds
// require Scenario.Durable: kill crashes node From (listener closed,
// journal abandoned without a final snapshot — exactly what a process
// kill leaves on disk), restart recovers it from its data directory,
// asserts the recovered fingerprints match the kill-time state, and
// rejoins it to the mesh. The "leave" and "join" kinds require
// Scenario.Gossip: leave departs node From gracefully (final push,
// departure announcement, shutdown — its sets move to new owners via
// the ring), join boots a fresh empty-store node in a previously
// departed slot, bootstrapping its member table from node 0 alone.
type Fault struct {
	Round int
	Kind  string // "partition" | "heal" | "latency" | "bandwidth" | "drop" | "flip" | "down" | "up" | "kill" | "restart" | "leave" | "join"

	Groups   [][]int       // partition: node-index groups (unlisted nodes form a remainder group)
	From, To int           // link faults
	Min, Max time.Duration // latency window
	BPS      int64         // bandwidth cap
	Offset   int64         // drop-at-offset / flip-at-offset for the link's next connection
	Count    int           // flip: corruption window length in bytes
}

// Flaky schedules programmatic link flaps: every round below Rounds,
// one random link is armed to drop its next connection at a random
// byte offset in [1, MaxOffset] — both sampled from the run seed.
type Flaky struct {
	Rounds    int
	MaxOffset int64
}

// Scenario declares a whole simulation.
type Scenario struct {
	Name string
	Desc string
	// Nodes is the mesh size.
	Nodes int
	// Sets are hosted by every node.
	Sets []SetSpec
	// Rounds caps the anti-entropy rounds driven before the run is
	// declared non-converged.
	Rounds int
	// ChurnRounds is how many initial rounds apply churn (each node,
	// each set: ChurnBatches × {add f0, add f1, remove f0} — the
	// add-wins-safe pattern that never removes a replicated point).
	ChurnRounds int
	// ChurnBatches is the number of churn batches per node/set/round
	// (default 1).
	ChurnBatches int
	// Faults is the scripted fault schedule.
	Faults []Fault
	// Flaky, when set, adds seeded random link flaps on top.
	Flaky *Flaky
	// Streak is how many consecutive all-converged rounds end the run
	// (default 1).
	Streak int
	// DisableMux runs the whole mesh on RSYN v2 networking — one
	// dedicated connection per session — instead of the default pooled
	// v3 carriers. It is the before-side of the dial-amortization
	// comparison: same scenario, same seed, only the transport economy
	// differs.
	DisableMux bool
	// Pipeline is each node's in-round reconcile concurrency
	// (cluster.Config.Pipeline; default 1 = strictly sequential). When
	// > 1, the harness prewarms every node's carrier pool before
	// driving, so the dial trace stays deterministic while sessions
	// overlap on the established carriers.
	Pipeline int
	// LatencyMin/LatencyMax, when set, install a per-write latency
	// window on every link of the mesh before any connection is dialed.
	// Scheduled latency faults only affect connections dialed after
	// they apply (a pair freezes its faults at dial time) — build-time
	// installation is what prices long-lived carriers and per-session
	// dials under identical link conditions.
	LatencyMin, LatencyMax time.Duration
	// Durable backs every node's store with a write-ahead journal and
	// epoch snapshots (internal/store/durable) in a per-run temp
	// directory, enabling "kill"/"restart" faults. The directory path
	// never enters the trace, so replay determinism is unaffected.
	Durable bool
	// Gossip shards the mesh: membership is maintained by SWIM-style
	// gossip (internal/gossip) and each set is hosted only by its
	// consistent-hash ring owners (internal/placement). The harness
	// plants initial points only into owners, drives a gossip round
	// before each reconcile round, and judges convergence per replica
	// group: every set on exactly min(Replication, live nodes) hosts,
	// fingerprint-equal, with no handoff pending and no node over the
	// bounded-loads budget. Enables the "leave"/"join" faults.
	Gossip bool
	// Replication is the ring replication factor R (default 3).
	Replication int
	// VNodes is the ring's virtual-node count per member (default
	// placement.DefaultVNodes).
	VNodes int
	// PlacementSlack is the bounded-loads headroom ε (default
	// placement.DefaultSlack).
	PlacementSlack float64
	// GossipFanout is the push-pull partners per gossip round
	// (default 2).
	GossipFanout int
	// SuspectRounds is how long suspicion ages before a member is
	// declared dead (default 3).
	SuspectRounds int
	// Choices is the power-of-d probe width per set per round
	// (cluster.Config.Choices; default 2). Exposed so the choices-sweep
	// benchmark can run the same scenario at d=1..4.
	Choices int
	// Byzantine lists node indices that act as corrupting peers: the
	// node serves probes honestly but its repair responder corrupts
	// every outgoing point payload (verify-before-merge on honest
	// initiators must reject every batch), and it never initiates
	// anti-entropy itself — it lurks, poisoning whoever pulls from it.
	// The harness then also requires, on top of convergence: zero
	// corrupt points accepted (the ground-truth check would catch any),
	// at least one corrupt-batch rejection recorded, and every
	// byzantine peer quarantined in every honest node's health ledger
	// at end of run. Requires at least 2 honest nodes; incompatible
	// with Gossip (a byzantine member table is a different threat
	// model, and a later PR).
	Byzantine []int
}

// Result is one run's outcome: the deterministic trace, the round
// convergence was reached (-1 if never), and any invariant failures.
type Result struct {
	Scenario string
	Seed     uint64
	// ConvergedRound is the 0-based round after which every set was
	// fingerprint-equal across all nodes for Streak rounds (-1: never).
	ConvergedRound int
	// RoundsRun is how many rounds executed.
	RoundsRun int
	// Failures lists violated invariants (empty on success; every entry
	// is also a trace line, so trace diffs catch them too).
	Failures []string
	// Dials / Sessions total the mesh's outbound connection economy
	// over the driven rounds (canary excluded): connections actually
	// dialed vs. sessions run. With pooled carriers Sessions >> Dials;
	// with DisableMux they are equal.
	Dials    uint64
	Sessions uint64
	// Probes totals the mesh's outbound probe sessions over the driven
	// rounds — the denominator of the rounds-to-converge vs probes/round
	// trade the choices sweep measures.
	Probes uint64
	// DialsByRound breaks Dials down per driven round (round 0 includes
	// any prewarm dials). Pooled carriers front-load dialing — steady
	// rounds after the first dial little to nothing — while DisableMux
	// dials every round; the per-round shape is what the
	// dial-amortization gate asserts on.
	DialsByRound []uint64
	trace        []string
}

// Ok reports whether every invariant held.
func (r *Result) Ok() bool { return len(r.Failures) == 0 }

// Trace returns the deterministic event trace, one line per event.
func (r *Result) Trace() []string { return append([]string(nil), r.trace...) }

// TraceText returns the trace as one newline-joined blob (the byte
// string CI's replay-determinism check diffs).
func (r *Result) TraceText() string { return strings.Join(r.trace, "\n") + "\n" }

// run is the mutable state of one Run.
type run struct {
	sc    Scenario
	seed  uint64
	net   *simnet.Network
	nodes []*cluster.Node // nil entry = node currently killed
	// expected is the ground-truth union per set: base + every node's
	// extras + every churn survivor, maintained as points are planted.
	expected map[string]metric.PointSet
	churnSrc *rng.Source
	flakySrc *rng.Source

	// Durable-scenario state: per-node durable stores rooted under
	// dataDir, kill-time fingerprints for the restart assertion, which
	// nodes came back from disk (for the delta-not-full check), and the
	// network counters of dead incarnations (their pools are gone, but
	// the run totals must still add up).
	dataDir   string
	durables  []*durable.Store
	killFP    map[int]map[string]uint64
	restarted map[int]bool
	netBase   session.PoolStats

	// Gossip-scenario state: nodes that left gracefully (a nil entry in
	// nodes that is NOT a failure at end of run — unless rejoined), and
	// each node's membership handle for trace counters.
	departed map[int]bool
	gossips  []*gossip.Gossip

	// byz marks byzantine node indices (Scenario.Byzantine as a set):
	// excluded from driving, churn, fingerprint comparison, ground
	// truth, and the canary round — they serve sessions, nothing else.
	byz map[int]bool

	traceMu sync.Mutex // tracef is called from network-event goroutines too
	res     *Result
}

const (
	scenarioDim      = 64
	scenarioSyncSeed = 0x51c2
)

// tracef appends one trace line. It must be safe for concurrent use:
// the harness thread owns almost every line, but simnet cut events are
// emitted from whichever goroutine's write crossed the fault (ordered
// deterministically by simnet — before the chunk is delivered — but on
// a different goroutine).
func (r *run) tracef(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	r.traceMu.Lock()
	r.res.trace = append(r.res.trace, line)
	r.traceMu.Unlock()
}

func (r *run) failf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	r.res.Failures = append(r.res.Failures, msg)
	r.tracef("FAIL: %s", msg)
}

func host(i int) string { return fmt.Sprintf("node%d", i) }

// points derives a deterministic point set from the run seed and a
// purpose tag, so every generator stream is independent.
func (r *run) points(n int, tag uint64) metric.PointSet {
	return workload.RandomSet(metric.HammingCube(scenarioDim), n, rng.New(r.seed^tag))
}

// Run executes the scenario over a fresh simnet seeded with seed and
// returns the result; the error is non-nil only for invalid scenarios
// (a failed run returns Ok() == false instead).
func Run(sc Scenario, seed uint64) (*Result, error) {
	if sc.Nodes < 2 {
		return nil, fmt.Errorf("scenario %q: need at least 2 nodes", sc.Name)
	}
	if len(sc.Sets) == 0 {
		return nil, fmt.Errorf("scenario %q: need at least one set", sc.Name)
	}
	if sc.Rounds <= 0 {
		return nil, fmt.Errorf("scenario %q: need a positive round cap", sc.Name)
	}
	if sc.Flaky != nil && sc.Flaky.MaxOffset <= 0 {
		return nil, fmt.Errorf("scenario %q: Flaky.MaxOffset must be positive", sc.Name)
	}
	for _, f := range sc.Faults {
		if (f.Kind == "kill" || f.Kind == "restart") && !sc.Durable {
			return nil, fmt.Errorf("scenario %q: %q fault requires Durable", sc.Name, f.Kind)
		}
		if (f.Kind == "leave" || f.Kind == "join") && !sc.Gossip {
			return nil, fmt.Errorf("scenario %q: %q fault requires Gossip", sc.Name, f.Kind)
		}
		if (f.Kind == "kill" || f.Kind == "restart") && sc.Gossip {
			// A durable restart rejoins via SetPeers; gossip nodes get
			// their peers from the member table. The combination is a
			// later PR, not a silent half-working mode.
			return nil, fmt.Errorf("scenario %q: %q fault is not supported with Gossip", sc.Name, f.Kind)
		}
	}
	if sc.Gossip {
		if sc.Replication <= 0 {
			sc.Replication = 3
		}
		for _, spec := range sc.Sets {
			if spec.Name == "" {
				return nil, fmt.Errorf("scenario %q: Gossip mode needs named sets (the catalog keys on names)", sc.Name)
			}
		}
	}
	if len(sc.Byzantine) > 0 {
		if sc.Gossip {
			return nil, fmt.Errorf("scenario %q: Byzantine nodes are not supported with Gossip", sc.Name)
		}
		seen := make(map[int]bool, len(sc.Byzantine))
		for _, b := range sc.Byzantine {
			if b < 0 || b >= sc.Nodes {
				return nil, fmt.Errorf("scenario %q: byzantine index %d out of range", sc.Name, b)
			}
			if seen[b] {
				return nil, fmt.Errorf("scenario %q: byzantine index %d listed twice", sc.Name, b)
			}
			seen[b] = true
		}
		if sc.Nodes-len(sc.Byzantine) < 2 {
			return nil, fmt.Errorf("scenario %q: need at least 2 honest nodes", sc.Name)
		}
	}
	if sc.Streak <= 0 {
		sc.Streak = 1
	}
	if sc.ChurnBatches <= 0 {
		sc.ChurnBatches = 1
	}
	r := &run{
		sc:       sc,
		seed:     seed,
		net:      simnet.New(seed),
		expected: make(map[string]metric.PointSet),
		churnSrc: rng.New(seed ^ 0xc00c),
		flakySrc: rng.New(seed ^ 0xf1a8),
		res:      &Result{Scenario: sc.Name, Seed: seed, ConvergedRound: -1},
	}
	r.net.OnEvent = func(e simnet.Event) { r.tracef("  net: %s", e) }
	r.tracef("# scenario %s seed %d: %d nodes, %d sets, <=%d rounds", sc.Name, seed, sc.Nodes, len(sc.Sets), sc.Rounds)
	if len(sc.Byzantine) > 0 {
		r.byz = make(map[int]bool, len(sc.Byzantine))
		for _, b := range sc.Byzantine {
			r.byz[b] = true
		}
		r.tracef("byzantine: %v serve corrupted repair payloads and never initiate", sc.Byzantine)
	}
	if sc.Gossip {
		r.departed = make(map[int]bool)
		r.gossips = make([]*gossip.Gossip, sc.Nodes)
	}

	if sc.Durable {
		dir, err := os.MkdirTemp("", "scenario-durable-")
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		r.dataDir = dir
		r.durables = make([]*durable.Store, sc.Nodes)
		r.killFP = make(map[int]map[string]uint64)
		r.restarted = make(map[int]bool)
		defer os.RemoveAll(dir)
	}
	if err := r.buildMesh(); err != nil {
		// Nodes started before the failure hold listeners and accept
		// goroutines; a long-lived caller must not accumulate them.
		for _, n := range r.nodes {
			if n != nil {
				n.Close(0) //nolint:errcheck
			}
		}
		return nil, err
	}
	r.drive()
	r.checkRecovered()
	r.checkGroundTruth()
	r.checkByzantine()
	r.canaryRound()
	r.drain()
	// Snapshot-on-drain, after every node stopped mutating: the next
	// process (there is none — the temp dir dies with the run) would
	// recover with zero replay.
	for _, d := range r.durables {
		if d != nil {
			d.Close() //nolint:errcheck
		}
	}
	return r.res, nil
}

// setCfg builds one spec's live.Config — identical wherever the set is
// instantiated (plant-time, catalog, ground-truth reference), which the
// fingerprint comparisons require.
func setCfg(spec SetSpec) live.Config {
	cfg := live.Config{Sync: &live.SyncConfig{Seed: scenarioSyncSeed}}
	if spec.EMD {
		capacity := spec.Capacity
		if capacity <= 0 {
			capacity = 4096
		}
		p := emd.DefaultParams(metric.HammingCube(scenarioDim), capacity, 4, 7)
		cfg.EMD = &p
	}
	return cfg
}

// addr is node i's dialable address.
func addr(i int) string { return host(i) + ":1" }

// allAddrs lists every node's address in index order.
func (r *run) allAddrs() []string {
	out := make([]string, r.sc.Nodes)
	for i := range out {
		out[i] = addr(i)
	}
	return out
}

// setNames lists the scenario's set names.
func (r *run) setNames() []string {
	out := make([]string, len(r.sc.Sets))
	for i, spec := range r.sc.Sets {
		out[i] = spec.Name
	}
	return out
}

// catalog builds the cluster catalog every gossip node shares.
func (r *run) catalog() []cluster.CatalogSet {
	out := make([]cluster.CatalogSet, len(r.sc.Sets))
	for i, spec := range r.sc.Sets {
		out[i] = cluster.CatalogSet{Name: spec.Name, Config: setCfg(spec)}
	}
	return out
}

// ringOver builds the placement ring the harness-side invariant checks
// use — same inputs as every node's own ApplyPlacement, so the
// assignments agree.
func (r *run) ringOver(members []string) *placement.Ring {
	return placement.New(members, r.sc.VNodes, r.seed)
}

// buildMesh plants the stores and starts one cluster node per host.
func (r *run) buildMesh() error {
	if r.sc.LatencyMax > 0 {
		// Base link latency goes in before anything dials: a pair
		// freezes its fault window at dial time, so this is the only
		// ordering under which pooled carriers and per-session dials
		// price the same links.
		for i := 0; i < r.sc.Nodes; i++ {
			for j := i + 1; j < r.sc.Nodes; j++ {
				r.net.SetLatency(host(i), host(j), r.sc.LatencyMin, r.sc.LatencyMax)
			}
		}
		r.tracef("latency: all links %v..%v", r.sc.LatencyMin, r.sc.LatencyMax)
	}
	if r.sc.Gossip {
		return r.buildGossipMesh()
	}
	r.nodes = make([]*cluster.Node, r.sc.Nodes)
	for i := 0; i < r.sc.Nodes; i++ {
		st := store.New()
		if r.sc.Durable {
			d, err := durable.Open(filepath.Join(r.dataDir, host(i)), durable.Options{Fsync: durable.FsyncOff})
			if err != nil {
				return fmt.Errorf("scenario %q: %w", r.sc.Name, err)
			}
			r.durables[i] = d
			st.SetPersister(d)
		}
		for si, spec := range r.sc.Sets {
			base := r.points(spec.Base, uint64(si+1)*0xb45e)
			extras := r.points(spec.PerNode, uint64(si+1)*0xe57a+uint64(i+1)*0x101)
			if _, err := st.Create(spec.Name, setCfg(spec), append(base.Clone(), extras...)); err != nil {
				return fmt.Errorf("scenario %q: %w", r.sc.Name, err)
			}
			// A byzantine node's private extras never reach the honest
			// mesh: it never initiates, and every payload it serves is
			// corrupted and rejected. The honest ground truth excludes
			// them.
			if !r.byz[i] {
				r.expected[spec.Name] = append(r.expected[spec.Name], extras...)
			}
			if i == 0 {
				r.expected[spec.Name] = append(r.expected[spec.Name], base...)
			}
		}
		if err := r.startNode(i, st, nil); err != nil {
			return err
		}
	}
	for i, n := range r.nodes {
		n.SetPeers(r.peersOf(i))
	}
	if r.sc.Pipeline > 1 && !r.sc.DisableMux {
		// Pipelined rounds overlap sessions; establishing every carrier
		// now, sequentially and in node order, keeps the dial events in
		// the trace deterministic when the overlapped sessions start.
		for _, n := range r.nodes {
			n.Prewarm()
		}
		r.tracef("prewarm: pooled carriers established mesh-wide")
	}
	return nil
}

// buildGossipMesh starts the sharded variant: every node boots with an
// empty store plus full-bootstrap gossip seeds, the harness plants each
// set's initial points only into the nodes the ring assigns it to (the
// same assignment every node computes locally), and ApplyPlacement
// wires owner pools before the first round.
func (r *run) buildGossipMesh() error {
	addrs := r.allAddrs()
	asn := r.ringOver(addrs).Assign(r.setNames(), r.sc.Replication, r.sc.PlacementSlack)
	r.nodes = make([]*cluster.Node, r.sc.Nodes)
	for i := 0; i < r.sc.Nodes; i++ {
		st := store.New()
		for si, spec := range r.sc.Sets {
			owners := asn[spec.Name]
			owner := false
			for _, o := range owners {
				if o == addrs[i] {
					owner = true
					break
				}
			}
			if !owner {
				continue
			}
			base := r.points(spec.Base, uint64(si+1)*0xb45e)
			extras := r.points(spec.PerNode, uint64(si+1)*0xe57a+uint64(i+1)*0x101)
			if _, err := st.Create(spec.Name, setCfg(spec), append(base.Clone(), extras...)); err != nil {
				return fmt.Errorf("scenario %q: %w", r.sc.Name, err)
			}
			r.expected[spec.Name] = append(r.expected[spec.Name], extras...)
			if owners[0] == addrs[i] {
				r.expected[spec.Name] = append(r.expected[spec.Name], base...)
			}
		}
		if err := r.startNode(i, st, addrs); err != nil {
			return err
		}
	}
	for _, n := range r.nodes {
		n.ApplyPlacement()
	}
	budget := r.ringOver(addrs).Capacity(len(r.sc.Sets), r.sc.Replication, r.sc.PlacementSlack)
	r.tracef("placement: %d sets over %d nodes, R=%d, per-node budget %d",
		len(r.sc.Sets), r.sc.Nodes, r.sc.Replication, budget)
	return nil
}

// startNode builds and starts node i over its store. The cluster seed
// derives only from the run seed and the index, so a restarted
// incarnation makes the same peer choices a never-killed one would. In
// Gossip mode, seeds is the bootstrap member list for a fresh gossip
// instance (full mesh at build, node 0 for a later join).
func (r *run) startNode(i int, st *store.Store, seeds []string) error {
	cfg := cluster.Config{
		Store:          st,
		Network:        "sim",
		Interval:       -1, // harness-driven rounds
		Seed:           r.seed + uint64(i)*0x9e37,
		Choices:        r.sc.Choices,
		DialTimeout:    5 * time.Second,
		SessionTimeout: 30 * time.Second,
		DisableMux:     r.sc.DisableMux,
		Pipeline:       r.sc.Pipeline,
		Transport:      r.net.Host(host(i)),
	}
	if r.byz[i] {
		// The byzantine node answers probes and gossip honestly but its
		// repair responder ships corrupted point payloads: every point's
		// first coordinate is bumped, so nothing it serves hashes to the
		// IDs the honest initiator asked for.
		cfg.WrapResolver = func(res netproto.Resolver) netproto.Resolver {
			return func(set string, proto netproto.Proto, peerRole netproto.Role) (func() netproto.Handler, bool) {
				f, exists := res(set, proto, peerRole)
				if f != nil && proto == netproto.ProtoRepair && peerRole == netproto.RoleAlice {
					if ls, ok := st.Get(set); ok {
						if cf, err := netproto.NewCorruptingRepairResponderFactory(ls); err == nil {
							return cf, exists
						}
					}
				}
				return f, exists
			}
		}
	}
	if r.sc.Gossip {
		g, err := gossip.New(gossip.Config{
			Self:          addr(i),
			Seeds:         seeds,
			Fanout:        r.sc.GossipFanout,
			SuspectRounds: r.sc.SuspectRounds,
			Seed:          r.seed ^ (0x6055 + uint64(i)*0x101),
		})
		if err != nil {
			return err
		}
		r.gossips[i] = g
		cfg.Membership = g
		cfg.Catalog = r.catalog()
		cfg.Replication = r.sc.Replication
		cfg.VNodes = r.sc.VNodes
		cfg.PlacementSlack = r.sc.PlacementSlack
		cfg.PlacementSeed = r.seed
	}
	n, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	if _, err := n.Start(addr(i)); err != nil {
		return err
	}
	r.nodes[i] = n
	return nil
}

// peersOf lists every other node's address.
func (r *run) peersOf(i int) []string {
	var peers []string
	for j := 0; j < r.sc.Nodes; j++ {
		if j != i {
			peers = append(peers, host(j)+":1")
		}
	}
	return peers
}

// applyFaults installs every fault scheduled for the round. In Gossip
// mode a fault round ends with a mesh-wide carrier-pool reset: faults
// sever pooled carriers, and a severed carrier's death is detected
// asynchronously by its read loop — whether the next session sees
// "carrier failed" or a fresh dial would otherwise be a race in the
// trace. (The sharded mesh is what leaves carriers idle across a
// partition: placement reassigns probes within each side, so the cut
// carrier's first use — and the race — happens rounds later, at heal.)
func (r *run) applyFaults(round int) {
	applied := false
	for _, f := range r.sc.Faults {
		if f.Round != round {
			continue
		}
		applied = true
		switch f.Kind {
		case "partition":
			groups := make([][]string, len(f.Groups))
			for gi, g := range f.Groups {
				for _, ni := range g {
					groups[gi] = append(groups[gi], host(ni))
				}
			}
			r.tracef("fault: partition %v", groups)
			r.net.Partition(groups...)
		case "heal":
			r.tracef("fault: heal")
			r.net.Heal()
		case "latency":
			r.tracef("fault: latency %s--%s %v..%v", host(f.From), host(f.To), f.Min, f.Max)
			r.net.SetLatency(host(f.From), host(f.To), f.Min, f.Max)
		case "bandwidth":
			r.tracef("fault: bandwidth %s--%s %dB/s", host(f.From), host(f.To), f.BPS)
			r.net.SetBandwidth(host(f.From), host(f.To), f.BPS)
		case "drop":
			r.tracef("fault: drop %s--%s at offset %d", host(f.From), host(f.To), f.Offset)
			r.net.DropAfter(host(f.From), host(f.To), f.Offset)
		case "flip":
			r.tracef("fault: flip %s--%s at offset %d+%d", host(f.From), host(f.To), f.Offset, f.Count)
			r.net.FlipAfter(host(f.From), host(f.To), f.Offset, f.Count)
		case "down":
			r.tracef("fault: down %s--%s", host(f.From), host(f.To))
			r.net.SetDown(host(f.From), host(f.To), true)
		case "up":
			r.tracef("fault: up %s--%s", host(f.From), host(f.To))
			r.net.SetDown(host(f.From), host(f.To), false)
		case "kill":
			r.killNode(f.From)
		case "restart":
			r.restartNode(f.From)
		case "leave":
			r.leaveNode(f.From)
		case "join":
			r.joinNode(f.From)
		default:
			r.failf("unknown fault kind %q at round %d", f.Kind, f.Round)
		}
	}
	if applied && r.sc.Gossip {
		for _, n := range r.nodes {
			if n != nil {
				n.ResetPool()
			}
		}
		r.tracef("fault: carrier pools reset mesh-wide")
	}
	if fl := r.sc.Flaky; fl != nil && round < fl.Rounds {
		a := r.flakySrc.Intn(r.sc.Nodes)
		b := r.flakySrc.Intn(r.sc.Nodes - 1)
		if b >= a {
			b++
		}
		off := 1 + int64(r.flakySrc.Uint64n(uint64(fl.MaxOffset)))
		r.tracef("fault: flaky drop %s--%s at offset %d", host(a), host(b), off)
		r.net.DropAfter(host(a), host(b), off)
	}
}

// killNode crashes node i: record its per-set fingerprints (the ground
// truth recovery must reproduce), close the node, and abandon its
// durable store without a final snapshot — the disk is left exactly as
// a process kill would leave it.
func (r *run) killNode(i int) {
	n := r.nodes[i]
	if n == nil {
		r.failf("kill: node %d is already down", i)
		return
	}
	fps := make(map[string]uint64, len(r.sc.Sets))
	for _, spec := range r.sc.Sets {
		if ls, ok := storeGet(n, spec.Name); ok {
			fps[spec.Name] = ls.IDFingerprint()
		}
	}
	r.killFP[i] = fps
	// Fold the dead incarnation's connection economy into the run
	// totals before its pool disappears.
	st := n.NetStats()
	r.netBase.Dials += st.Dials
	r.netBase.Sessions += st.Sessions
	r.netBase.Reuses += st.Reuses
	r.netBase.Fallbacks += st.Fallbacks
	n.Close(0) //nolint:errcheck
	r.durables[i].Crash()
	r.nodes[i] = nil
	r.tracef("fault: kill %s", host(i))
}

// restartNode brings node i back from its data directory: recover the
// store, assert every set's fingerprint equals the kill-time value
// (journal ground truth), and rejoin the mesh. The recovery stats go
// into the trace — replay counts are as deterministic as the mutation
// history that produced them.
func (r *run) restartNode(i int) {
	if r.nodes[i] != nil {
		r.failf("restart: node %d is not down", i)
		return
	}
	d, err := durable.Open(filepath.Join(r.dataDir, host(i)), durable.Options{Fsync: durable.FsyncOff})
	if err != nil {
		r.failf("restart node %d: %v", i, err)
		return
	}
	st := store.New()
	stats, err := d.Recover(st)
	if err != nil {
		r.failf("restart node %d: recover: %v", i, err)
		return
	}
	for _, spec := range r.sc.Sets {
		ls, ok := st.Get(spec.Name)
		if !ok {
			r.failf("restart node %d: set %q not recovered", i, spec.Name)
			continue
		}
		if got, want := ls.IDFingerprint(), r.killFP[i][spec.Name]; got != want {
			r.failf("restart node %d: set %q recovered fingerprint %016x != kill-time %016x", i, spec.Name, got, want)
		}
	}
	st.SetPersister(d)
	r.durables[i] = d
	if err := r.startNode(i, st, nil); err != nil {
		r.failf("restart node %d: %v", i, err)
		return
	}
	r.nodes[i].SetPeers(r.peersOf(i))
	r.restarted[i] = true
	r.tracef("fault: restart %s (recovered %v)", host(i), stats)
}

// leaveNode departs node i gracefully: Leave pushes its state to every
// set's co-owners, spreads the departure announcement, and shuts the
// node down. Its slot stays empty (departed) unless a later "join"
// fault reuses it.
func (r *run) leaveNode(i int) {
	n := r.nodes[i]
	if n == nil {
		r.failf("leave: node %d is already down", i)
		return
	}
	r.tracef("fault: leave %s", host(i))
	if err := n.Leave(2 * time.Second); err != nil {
		r.failf("leave node %d: %v", i, err)
	}
	// Fold the departed incarnation's connection economy into the run
	// totals before its pool disappears.
	st := n.NetStats()
	r.netBase.Dials += st.Dials
	r.netBase.Sessions += st.Sessions
	r.netBase.Reuses += st.Reuses
	r.netBase.Fallbacks += st.Fallbacks
	r.nodes[i] = nil
	r.gossips[i] = nil
	r.departed[i] = true
	r.quiesce() // Leave ran sessions against the whole mesh; settle them
}

// joinNode boots a fresh node with an empty store in a departed slot,
// seeding its member table from node 0 alone — the realistic bootstrap:
// a joiner knows one long-lived address, pulls the full table in its
// first exchange (refuting its own stale left/dead entry by incarnation
// along the way), and only then computes a placement from the complete
// view. The harness deliberately skips the build-time ApplyPlacement
// here: the node's first GossipOnce applies placement after the table
// sync, so it never acts on the two-member bootstrap view.
func (r *run) joinNode(i int) {
	if r.nodes[i] != nil {
		r.failf("join: node %d is not down", i)
		return
	}
	if err := r.startNode(i, store.New(), []string{addr(0)}); err != nil {
		r.failf("join node %d: %v", i, err)
		return
	}
	delete(r.departed, i)
	r.tracef("fault: join %s (seeded from %s)", host(i), host(0))
}

// churn applies the add-wins-safe churn pattern on every node and set,
// extending the ground-truth union with the surviving point of each
// batch (the removed point dies inside its own batch and is never
// replicated).
func (r *run) churn(round int) {
	churned := 0
	for i, n := range r.nodes {
		if n == nil || r.byz[i] {
			continue // killed nodes churn nothing; byzantine nodes lurk
		}
		for si, spec := range r.sc.Sets {
			ls, ok := storeGet(n, spec.Name)
			if !ok {
				if r.sc.Gossip {
					continue // non-owners legitimately don't host the set
				}
				r.failf("node %d lost set %q", i, spec.Name)
				continue
			}
			churned++
			for b := 0; b < r.sc.ChurnBatches; b++ {
				fresh := r.points(2, 0xcafe+uint64(round)*0x10000+uint64(i)*0x100+uint64(si)*0x10+uint64(b))
				err := ls.ApplyBatch([]live.Op{
					{Point: fresh[0]},
					{Point: fresh[1]},
					{Remove: true, Point: fresh[0]},
				})
				if err != nil {
					r.failf("churn round %d node %d set %q: %v", round, i, spec.Name, err)
					continue
				}
				r.expected[spec.Name] = append(r.expected[spec.Name], fresh[1])
			}
		}
	}
	if r.sc.Gossip {
		r.tracef("churn: %d hosted (node,set) pairs x %d batches", churned, r.sc.ChurnBatches)
	} else {
		r.tracef("churn: %d nodes x %d sets x %d batches", len(r.nodes), len(r.sc.Sets), r.sc.ChurnBatches)
	}
}

// storeGet resolves a node's named set.
func storeGet(n *cluster.Node, name string) (*live.Set, bool) {
	return n.Store().Get(name)
}

// quiesce waits for every node's server to finish all accepted
// sessions, so state reads and the next sessions see settled sets.
func (r *run) quiesce() {
	for _, n := range r.nodes {
		if n != nil {
			n.Quiesce()
		}
	}
}

// fingerprintLine summarizes cross-node per-set fingerprints for the
// trace and reports whether every set matches everywhere.
func (r *run) fingerprintLine() (string, bool) {
	var b strings.Builder
	all := true
	for si, spec := range r.sc.Sets {
		var fp uint64
		match, first := true, true
		for i, n := range r.nodes {
			if n == nil || r.byz[i] {
				continue // killed and byzantine nodes sit out the comparison
			}
			ls, ok := storeGet(n, spec.Name)
			if !ok {
				match = false
				continue
			}
			f := ls.IDFingerprint()
			if first {
				fp, first = f, false
			} else if f != fp {
				match = false
			}
		}
		if si > 0 {
			b.WriteString(" ")
		}
		name := spec.Name
		if name == "" {
			name = "<default>"
		}
		if match {
			fmt.Fprintf(&b, "%s=%016x", name, fp)
		} else {
			fmt.Fprintf(&b, "%s=DIVERGED", name)
			all = false
		}
	}
	return b.String(), all
}

// gossipLine is the sharded-mode convergence summary: each set must be
// hosted by exactly min(Replication, live nodes) hosts with equal
// fingerprints, and no node may have a handoff pending. The per-set
// field shows fingerprint/hostcount; a trailing "!" flags a wrong host
// count, and a handoff=N field appears while relinquishes are pending.
func (r *run) gossipLine() (string, bool) {
	live, pending := 0, 0
	for _, n := range r.nodes {
		if n == nil {
			continue
		}
		live++
		pending += n.Placement().Relinquishing
	}
	want := r.sc.Replication
	if want > live {
		want = live
	}
	all := pending == 0
	var b strings.Builder
	for si, spec := range r.sc.Sets {
		hosts := 0
		var fp uint64
		match, first := true, true
		for _, n := range r.nodes {
			if n == nil {
				continue
			}
			ls, ok := storeGet(n, spec.Name)
			if !ok {
				continue
			}
			hosts++
			f := ls.IDFingerprint()
			if first {
				fp, first = f, false
			} else if f != fp {
				match = false
			}
		}
		if si > 0 {
			b.WriteString(" ")
		}
		switch {
		case !match:
			fmt.Fprintf(&b, "%s=DIVERGED/%d", spec.Name, hosts)
			all = false
		case hosts != want:
			fmt.Fprintf(&b, "%s=%016x/%d!", spec.Name, fp, hosts)
			all = false
		default:
			fmt.Fprintf(&b, "%s=%016x/%d", spec.Name, fp, hosts)
		}
	}
	if pending > 0 {
		fmt.Fprintf(&b, " handoff=%d", pending)
	}
	return b.String(), all
}

// stateLine picks the mode's convergence summary.
func (r *run) stateLine() (string, bool) {
	if r.sc.Gossip {
		return r.gossipLine()
	}
	return r.fingerprintLine()
}

// gossipRound drives one membership round across the mesh and traces
// the aggregate: exchange economy plus the min/max active-member count
// every node currently believes (they converge to live/live).
func (r *run) gossipRound() {
	exchanged, failed, changed := 0, 0, 0
	minActive, maxActive, total := -1, 0, 0
	for _, n := range r.nodes {
		if n == nil {
			continue
		}
		st := n.GossipOnce()
		exchanged += st.Exchanged
		failed += st.Failed
		if st.Changed {
			changed++
		}
		if minActive < 0 || st.Active < minActive {
			minActive = st.Active
		}
		if st.Active > maxActive {
			maxActive = st.Active
		}
		total = st.Total
	}
	r.quiesce() // responder-side merges finish before anyone reads tables
	if minActive < 0 {
		minActive = 0
	}
	r.tracef("gossip: %d exchanged, %d failed, %d tables changed, active %d..%d of %d",
		exchanged, failed, changed, minActive, maxActive, total)
}

// drive runs the scheduled rounds until the convergence streak or the
// round cap.
func (r *run) drive() {
	streak := 0
	// The streak only counts once churn is done AND every scheduled
	// fault has been applied: a mesh that looks converged at round 3
	// must not end a run whose partition is scheduled for round 4.
	minConverge := r.sc.ChurnRounds
	for _, f := range r.sc.Faults {
		if f.Round > minConverge {
			minConverge = f.Round
		}
	}
	for round := 0; round < r.sc.Rounds; round++ {
		r.res.RoundsRun = round + 1
		r.tracef("[round %03d]", round)
		r.applyFaults(round)
		if round < r.sc.ChurnRounds {
			r.churn(round)
		}
		if r.sc.Gossip {
			r.gossipRound()
		}
		for i, n := range r.nodes {
			if n == nil {
				r.tracef("node %d: down", i)
				continue
			}
			if r.byz[i] {
				// A byzantine node never initiates: it lurks, serving
				// corrupted repair payloads to whoever pulls from it.
				r.tracef("node %d: byzantine (lurking)", i)
				continue
			}
			repaired, err := n.ReconcileOnce()
			// Barrier: a repair responder applies its merge after the
			// initiator's session returned, so the next node's round (and
			// the fingerprint line below) must wait for every server to
			// settle or the trace races the mesh's own goroutines.
			r.quiesce()
			if err != nil {
				r.tracef("node %d: reconcile repaired=%d err: %v", i, repaired, err)
			} else {
				r.tracef("node %d: reconcile repaired=%d", i, repaired)
			}
		}
		line, converged := r.stateLine()
		r.tracef("state: %s", line)
		if len(r.byz) > 0 {
			// Conviction progress: how many honest ledgers hold every
			// byzantine peer quarantined, and the mesh-wide count of
			// rejected corrupt batches. States and counters only — EWMA
			// scores and RTTs are wall-clock-tainted and must stay out
			// of the trace.
			r.tracef("health: byz-quarantined %d/%d honest ledgers, corrupt-rejections %d",
				r.byzConvictedCount(), r.honestCount(), r.corruptRejections())
			converged = converged && r.byzConvicted()
		}
		dialed := r.netBase.Dials
		for _, n := range r.nodes {
			if n != nil {
				dialed += n.NetStats().Dials
			}
		}
		for _, prev := range r.res.DialsByRound {
			dialed -= prev
		}
		r.res.DialsByRound = append(r.res.DialsByRound, dialed)
		if converged && round >= minConverge {
			streak++
			if streak >= r.sc.Streak {
				r.res.ConvergedRound = round
				r.tracef("converged: round %d (streak %d)", round, streak)
				break
			}
		} else {
			streak = 0
		}
	}
	if r.res.ConvergedRound < 0 {
		r.failf("not converged after %d rounds", r.res.RoundsRun)
	}
	// Per-set metrics, sorted, once the mesh settles: a deterministic
	// summary that widens the trace's nondeterminism-detection surface.
	for i, n := range r.nodes {
		if n == nil {
			continue
		}
		m := n.Metrics()
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			display := name
			if display == "" {
				display = "<default>"
			}
			r.res.Probes += m[name].Probes
			r.tracef("metrics: node %d set %s: %v", i, display, m[name])
		}
	}
	// Connection economy across the mesh: under pooled carriers the
	// dial count stays near the peer-pair count while sessions grow
	// with rounds × sets; with DisableMux every session is a dial. The
	// line is part of the trace, so a regression in reuse (an
	// accidentally re-dialing pool, a carrier dropped per round) shows
	// up as a trace diff, not just a slower run.
	dials, sessions := r.netBase.Dials, r.netBase.Sessions
	reuses, fallbacks := r.netBase.Reuses, r.netBase.Fallbacks
	for _, n := range r.nodes {
		if n == nil {
			continue
		}
		st := n.NetStats()
		dials += st.Dials
		sessions += st.Sessions
		reuses += st.Reuses
		fallbacks += st.Fallbacks
	}
	r.res.Dials, r.res.Sessions = dials, sessions
	r.tracef("net: %d sessions over %d dials (%d reused, %d plain fallback)", sessions, dials, reuses, fallbacks)
}

// checkRecovered asserts the durable-recovery convergence economy:
// every restarted node re-converged via delta repair, not a full
// transfer — the points it received after restart are bounded by what
// it could actually have missed (everything planted beyond the shared
// base), and a full-set transfer of base plus extras would blow the
// bound.
func (r *run) checkRecovered() {
	for i := range r.nodes {
		if r.nodes[i] == nil && !r.departed[i] {
			r.failf("node %d still down at end of run", i)
		}
	}
	for i := range r.restarted {
		n := r.nodes[i]
		if n == nil {
			continue
		}
		m := n.Metrics()
		for _, spec := range r.sc.Sets {
			bound := uint64(len(r.expected[spec.Name]) - spec.Base)
			if got := m[spec.Name].PointsReceived; got > bound {
				r.failf("restarted node %d set %q received %d points, delta bound %d (full transfer?)",
					i, spec.Name, got, bound)
			}
		}
	}
	if len(r.restarted) > 0 {
		r.tracef("recovery: %d restarted nodes re-converged within the delta bound", len(r.restarted))
	}
}

// checkGroundTruth verifies every node's every set equals the union the
// harness planted: same distinct count, same ID fingerprint. In Gossip
// mode only the hosting owners are compared (non-owners legitimately
// don't carry the set) and checkPlacement then pins hosting to the
// exact ring assignment.
func (r *run) checkGroundTruth() {
	for _, spec := range r.sc.Sets {
		// A reference set built straight from the planted union is the
		// ground truth: same Sync seed, so fingerprints are comparable.
		ref, err := live.NewSet(live.Config{Sync: &live.SyncConfig{Seed: scenarioSyncSeed}}, r.expected[spec.Name])
		if err != nil {
			r.failf("ground-truth set %q: %v", spec.Name, err)
			continue
		}
		fp, distinct := ref.IDFingerprint(), ref.Distinct()
		for i, n := range r.nodes {
			if n == nil || r.byz[i] {
				// Down nodes already failed in checkRecovered; byzantine
				// nodes are permanently divergent by design.
				continue
			}
			ls, ok := storeGet(n, spec.Name)
			if !ok {
				if r.sc.Gossip {
					continue // non-owners checked by checkPlacement
				}
				r.failf("node %d lost set %q", i, spec.Name)
				continue
			}
			if got := ls.IDFingerprint(); got != fp {
				r.failf("node %d set %q fingerprint %016x != ground-truth union %016x", i, spec.Name, got, fp)
			}
			if got := ls.Distinct(); got != distinct {
				r.failf("node %d set %q has %d distinct points, ground truth %d", i, spec.Name, got, distinct)
			}
		}
	}
	r.tracef("ground truth: %d sets checked against planted unions", len(r.sc.Sets))
	if r.sc.Gossip {
		r.checkPlacement()
	}
}

// honestCount is the number of live, non-byzantine nodes.
func (r *run) honestCount() int {
	c := 0
	for i, n := range r.nodes {
		if n != nil && !r.byz[i] {
			c++
		}
	}
	return c
}

// byzConvictedCount counts honest nodes whose health ledger holds
// every byzantine peer quarantined.
func (r *run) byzConvictedCount() int {
	c := 0
	for i, n := range r.nodes {
		if n == nil || r.byz[i] {
			continue
		}
		hs := n.PeerHealths()
		all := true
		for _, b := range r.sc.Byzantine {
			if hs[addr(b)].State != cluster.PeerQuarantined {
				all = false
				break
			}
		}
		if all {
			c++
		}
	}
	return c
}

// byzConvicted reports whether every honest ledger has convicted every
// byzantine peer — the extra convergence condition for byzantine runs.
func (r *run) byzConvicted() bool { return r.byzConvictedCount() == r.honestCount() }

// corruptRejections sums verify-before-merge rejections across every
// honest node's every set.
func (r *run) corruptRejections() uint64 {
	var total uint64
	for i, n := range r.nodes {
		if n == nil || r.byz[i] {
			continue
		}
		for _, m := range n.Metrics() {
			total += m.CorruptRejected
		}
	}
	return total
}

// checkByzantine is the robustness acceptance invariant: corrupt
// repair payloads were actually served and rejected (the scenario
// exercised the verify path, it didn't just route around the byzantine
// peer), and every honest node's ledger ends with every byzantine peer
// quarantined.
func (r *run) checkByzantine() {
	if len(r.byz) == 0 {
		return
	}
	rejected := r.corruptRejections()
	if rejected == 0 {
		r.failf("byzantine run ended with zero corrupt-batch rejections: verify path never exercised")
	}
	for i, n := range r.nodes {
		if n == nil || r.byz[i] {
			continue
		}
		hs := n.PeerHealths()
		for _, b := range r.sc.Byzantine {
			if st := hs[addr(b)].State; st != cluster.PeerQuarantined {
				r.failf("node %d ledger holds byzantine %s in state %v, want quarantined", i, host(b), st)
			}
		}
	}
	if rejected > 0 && r.byzConvicted() {
		r.tracef("byzantine: ok (%d corrupt batches rejected; %d peers quarantined on all %d honest ledgers)",
			rejected, len(r.byz), r.honestCount())
	}
}

// checkPlacement is the sharding acceptance invariant: the harness
// recomputes the ring over the final live member list (same inputs the
// nodes use) and requires every set to be hosted by exactly its
// assigned owners — no stragglers, no freeloaders — with every node at
// or under the bounded-loads budget.
func (r *run) checkPlacement() {
	var liveAddrs []string
	for i, n := range r.nodes {
		if n != nil {
			liveAddrs = append(liveAddrs, addr(i))
		}
	}
	ring := r.ringOver(liveAddrs)
	asn := ring.Assign(r.setNames(), r.sc.Replication, r.sc.PlacementSlack)
	for _, spec := range r.sc.Sets {
		ownerOf := map[string]bool{}
		for _, o := range asn[spec.Name] {
			ownerOf[o] = true
		}
		for i, n := range r.nodes {
			if n == nil {
				continue
			}
			_, hosted := storeGet(n, spec.Name)
			switch {
			case hosted && !ownerOf[addr(i)]:
				r.failf("node %d hosts set %q but the ring assigns it elsewhere (%v)", i, spec.Name, asn[spec.Name])
			case !hosted && ownerOf[addr(i)]:
				r.failf("node %d is an owner of set %q but does not host it", i, spec.Name)
			}
		}
	}
	rf := r.sc.Replication
	if rf > len(liveAddrs) {
		rf = len(liveAddrs)
	}
	budget := ring.Capacity(len(r.sc.Sets), rf, r.sc.PlacementSlack)
	maxLoad := 0
	for i, n := range r.nodes {
		if n == nil {
			continue
		}
		if c := len(n.Store().Names()); c > budget {
			r.failf("node %d hosts %d sets, bounded-loads budget %d", i, c, budget)
		} else if c > maxLoad {
			maxLoad = c
		}
	}
	r.tracef("placement: ok (%d live nodes, max load %d of budget %d)", len(liveAddrs), maxLoad, budget)
}

// canaryRound is the pooled-buffer ownership check: poison a batch of
// pooled encoders (whose backing arrays are the recycled buffers of the
// run's sessions), hold them across one extra full anti-entropy round,
// and require the round to be all-noops with unchanged fingerprints. A
// handler that kept a reference into a recycled buffer — or recycled
// one it no longer owned — surfaces here as a corrupted frame or a
// diverged set.
func (r *run) canaryRound() {
	if r.res.ConvergedRound < 0 {
		return // nothing meaningful to check against
	}
	// The canary round asserts buffer ownership on a clean network: an
	// armed drop waiting on a link that was never dialed again, a link
	// a scripted schedule left down, or an unhealed partition would
	// all be mislabeled as canary failures.
	r.net.ClearFaults()
	before, ok := r.stateLine()
	if !ok {
		r.failf("canary: mesh diverged before the canary round")
		return
	}
	release := PoisonPool(16, 4096)
	for i, n := range r.nodes {
		if n == nil || r.byz[i] {
			continue
		}
		if _, err := n.ReconcileOnce(); err != nil {
			r.failf("canary: node %d round errored: %v", i, err)
		}
		r.quiesce()
	}
	release()
	after, ok := r.stateLine()
	if !ok || after != before {
		r.failf("canary: fingerprints changed under pooled-buffer poison: %s -> %s", before, after)
		return
	}
	r.tracef("canary: ok (poisoned pool, round stayed converged)")
}

// PoisonPool grabs count pooled encoders — whose backing arrays are
// recycled session buffers — and scribbles size bytes of junk into
// each, holding them until the returned release func runs. Any code
// path that kept a reference into pooled memory it no longer owns is
// exposed while the poison is live. Shared by the scenario canary
// round and the mid-stream failure matrix.
func PoisonPool(count, size int) (release func()) {
	junk := make([]byte, size)
	for i := range junk {
		junk[i] = 0xde
	}
	poison := make([]*transport.Encoder, count)
	for i := range poison {
		poison[i] = transport.NewEncoder()
		poison[i].WriteBytes(junk)
	}
	return func() {
		for _, p := range poison {
			data, _ := p.Pack()
			transport.Recycle(p, data) // encoder and poison buffer go back to the pool
		}
	}
}

// drain closes every node with a bounded drain and checks the virtual
// network for leaked connections.
func (r *run) drain() {
	for i, n := range r.nodes {
		if n == nil {
			continue
		}
		if err := n.Close(2 * time.Second); err != nil {
			r.failf("drain: node %d close: %v", i, err)
		}
	}
	if open := r.net.OpenConns(); open != 0 {
		r.failf("drain: %d connection endpoints leaked", open)
	} else {
		r.tracef("drain: ok (0 leaked conns)")
	}
}

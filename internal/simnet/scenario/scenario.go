// Package scenario is the harness that turns the simnet virtual
// network into whole-stack robustness tests: a Scenario declares a
// multi-node cluster topology, a fault schedule (partitions that heal,
// latency skew, bandwidth caps, drop-at-offset link flaps), and a
// churn workload; Run builds the mesh over one seeded simnet, drives
// anti-entropy rounds sequentially, and checks the built-in invariants
// — every named set converges to fingerprint equality AND to the
// ground-truth union the harness tracked while churning, no connection
// leaks after drain, and a pooled-buffer poison canary.
//
// Determinism: all workload points, peer choices, and fault samples
// derive from the run seed; rounds and the sessions within them are
// driven strictly sequentially from one goroutine; and simnet delivers
// connection events in a reproducible order. The same (scenario, seed)
// therefore yields a byte-identical event trace — which is both the
// replay-debugging story (re-run the seed, get the same failure) and a
// regression check in itself (CI diffs two runs).
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/emd"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/session"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/store/durable"
	"repro/internal/transport"
	"repro/internal/workload"
)

// SetSpec declares one named set hosted by every node.
type SetSpec struct {
	// Name is the set's namespace ("" = the default set).
	Name string
	// Base is the number of shared points every node starts with.
	Base int
	// PerNode is the number of node-private extra points (the initial
	// divergence anti-entropy must repair).
	PerNode int
	// EMD, when true, maintains the live EMD sketch (exercising the
	// delta/full pull tier on top of exact repair).
	EMD bool
	// Capacity bounds the set (default 4096; EMD sketch capacity).
	Capacity int
}

// Fault is one scheduled fault-schedule entry, applied at the start of
// its round. From/To are node indices. The "kill" and "restart" kinds
// require Scenario.Durable: kill crashes node From (listener closed,
// journal abandoned without a final snapshot — exactly what a process
// kill leaves on disk), restart recovers it from its data directory,
// asserts the recovered fingerprints match the kill-time state, and
// rejoins it to the mesh.
type Fault struct {
	Round int
	Kind  string // "partition" | "heal" | "latency" | "bandwidth" | "drop" | "down" | "up" | "kill" | "restart"

	Groups   [][]int       // partition: node-index groups (unlisted nodes form a remainder group)
	From, To int           // link faults
	Min, Max time.Duration // latency window
	BPS      int64         // bandwidth cap
	Offset   int64         // drop-at-offset for the link's next connection
}

// Flaky schedules programmatic link flaps: every round below Rounds,
// one random link is armed to drop its next connection at a random
// byte offset in [1, MaxOffset] — both sampled from the run seed.
type Flaky struct {
	Rounds    int
	MaxOffset int64
}

// Scenario declares a whole simulation.
type Scenario struct {
	Name string
	Desc string
	// Nodes is the mesh size.
	Nodes int
	// Sets are hosted by every node.
	Sets []SetSpec
	// Rounds caps the anti-entropy rounds driven before the run is
	// declared non-converged.
	Rounds int
	// ChurnRounds is how many initial rounds apply churn (each node,
	// each set: ChurnBatches × {add f0, add f1, remove f0} — the
	// add-wins-safe pattern that never removes a replicated point).
	ChurnRounds int
	// ChurnBatches is the number of churn batches per node/set/round
	// (default 1).
	ChurnBatches int
	// Faults is the scripted fault schedule.
	Faults []Fault
	// Flaky, when set, adds seeded random link flaps on top.
	Flaky *Flaky
	// Streak is how many consecutive all-converged rounds end the run
	// (default 1).
	Streak int
	// DisableMux runs the whole mesh on RSYN v2 networking — one
	// dedicated connection per session — instead of the default pooled
	// v3 carriers. It is the before-side of the dial-amortization
	// comparison: same scenario, same seed, only the transport economy
	// differs.
	DisableMux bool
	// Pipeline is each node's in-round reconcile concurrency
	// (cluster.Config.Pipeline; default 1 = strictly sequential). When
	// > 1, the harness prewarms every node's carrier pool before
	// driving, so the dial trace stays deterministic while sessions
	// overlap on the established carriers.
	Pipeline int
	// LatencyMin/LatencyMax, when set, install a per-write latency
	// window on every link of the mesh before any connection is dialed.
	// Scheduled latency faults only affect connections dialed after
	// they apply (a pair freezes its faults at dial time) — build-time
	// installation is what prices long-lived carriers and per-session
	// dials under identical link conditions.
	LatencyMin, LatencyMax time.Duration
	// Durable backs every node's store with a write-ahead journal and
	// epoch snapshots (internal/store/durable) in a per-run temp
	// directory, enabling "kill"/"restart" faults. The directory path
	// never enters the trace, so replay determinism is unaffected.
	Durable bool
}

// Result is one run's outcome: the deterministic trace, the round
// convergence was reached (-1 if never), and any invariant failures.
type Result struct {
	Scenario string
	Seed     uint64
	// ConvergedRound is the 0-based round after which every set was
	// fingerprint-equal across all nodes for Streak rounds (-1: never).
	ConvergedRound int
	// RoundsRun is how many rounds executed.
	RoundsRun int
	// Failures lists violated invariants (empty on success; every entry
	// is also a trace line, so trace diffs catch them too).
	Failures []string
	// Dials / Sessions total the mesh's outbound connection economy
	// over the driven rounds (canary excluded): connections actually
	// dialed vs. sessions run. With pooled carriers Sessions >> Dials;
	// with DisableMux they are equal.
	Dials    uint64
	Sessions uint64
	// DialsByRound breaks Dials down per driven round (round 0 includes
	// any prewarm dials). Pooled carriers front-load dialing — steady
	// rounds after the first dial little to nothing — while DisableMux
	// dials every round; the per-round shape is what the
	// dial-amortization gate asserts on.
	DialsByRound []uint64
	trace        []string
}

// Ok reports whether every invariant held.
func (r *Result) Ok() bool { return len(r.Failures) == 0 }

// Trace returns the deterministic event trace, one line per event.
func (r *Result) Trace() []string { return append([]string(nil), r.trace...) }

// TraceText returns the trace as one newline-joined blob (the byte
// string CI's replay-determinism check diffs).
func (r *Result) TraceText() string { return strings.Join(r.trace, "\n") + "\n" }

// run is the mutable state of one Run.
type run struct {
	sc    Scenario
	seed  uint64
	net   *simnet.Network
	nodes []*cluster.Node // nil entry = node currently killed
	// expected is the ground-truth union per set: base + every node's
	// extras + every churn survivor, maintained as points are planted.
	expected map[string]metric.PointSet
	churnSrc *rng.Source
	flakySrc *rng.Source

	// Durable-scenario state: per-node durable stores rooted under
	// dataDir, kill-time fingerprints for the restart assertion, which
	// nodes came back from disk (for the delta-not-full check), and the
	// network counters of dead incarnations (their pools are gone, but
	// the run totals must still add up).
	dataDir   string
	durables  []*durable.Store
	killFP    map[int]map[string]uint64
	restarted map[int]bool
	netBase   session.PoolStats

	traceMu sync.Mutex // tracef is called from network-event goroutines too
	res     *Result
}

const (
	scenarioDim      = 64
	scenarioSyncSeed = 0x51c2
)

// tracef appends one trace line. It must be safe for concurrent use:
// the harness thread owns almost every line, but simnet cut events are
// emitted from whichever goroutine's write crossed the fault (ordered
// deterministically by simnet — before the chunk is delivered — but on
// a different goroutine).
func (r *run) tracef(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	r.traceMu.Lock()
	r.res.trace = append(r.res.trace, line)
	r.traceMu.Unlock()
}

func (r *run) failf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	r.res.Failures = append(r.res.Failures, msg)
	r.tracef("FAIL: %s", msg)
}

func host(i int) string { return fmt.Sprintf("node%d", i) }

// points derives a deterministic point set from the run seed and a
// purpose tag, so every generator stream is independent.
func (r *run) points(n int, tag uint64) metric.PointSet {
	return workload.RandomSet(metric.HammingCube(scenarioDim), n, rng.New(r.seed^tag))
}

// Run executes the scenario over a fresh simnet seeded with seed and
// returns the result; the error is non-nil only for invalid scenarios
// (a failed run returns Ok() == false instead).
func Run(sc Scenario, seed uint64) (*Result, error) {
	if sc.Nodes < 2 {
		return nil, fmt.Errorf("scenario %q: need at least 2 nodes", sc.Name)
	}
	if len(sc.Sets) == 0 {
		return nil, fmt.Errorf("scenario %q: need at least one set", sc.Name)
	}
	if sc.Rounds <= 0 {
		return nil, fmt.Errorf("scenario %q: need a positive round cap", sc.Name)
	}
	if sc.Flaky != nil && sc.Flaky.MaxOffset <= 0 {
		return nil, fmt.Errorf("scenario %q: Flaky.MaxOffset must be positive", sc.Name)
	}
	for _, f := range sc.Faults {
		if (f.Kind == "kill" || f.Kind == "restart") && !sc.Durable {
			return nil, fmt.Errorf("scenario %q: %q fault requires Durable", sc.Name, f.Kind)
		}
	}
	if sc.Streak <= 0 {
		sc.Streak = 1
	}
	if sc.ChurnBatches <= 0 {
		sc.ChurnBatches = 1
	}
	r := &run{
		sc:       sc,
		seed:     seed,
		net:      simnet.New(seed),
		expected: make(map[string]metric.PointSet),
		churnSrc: rng.New(seed ^ 0xc00c),
		flakySrc: rng.New(seed ^ 0xf1a8),
		res:      &Result{Scenario: sc.Name, Seed: seed, ConvergedRound: -1},
	}
	r.net.OnEvent = func(e simnet.Event) { r.tracef("  net: %s", e) }
	r.tracef("# scenario %s seed %d: %d nodes, %d sets, <=%d rounds", sc.Name, seed, sc.Nodes, len(sc.Sets), sc.Rounds)

	if sc.Durable {
		dir, err := os.MkdirTemp("", "scenario-durable-")
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		r.dataDir = dir
		r.durables = make([]*durable.Store, sc.Nodes)
		r.killFP = make(map[int]map[string]uint64)
		r.restarted = make(map[int]bool)
		defer os.RemoveAll(dir)
	}
	if err := r.buildMesh(); err != nil {
		// Nodes started before the failure hold listeners and accept
		// goroutines; a long-lived caller must not accumulate them.
		for _, n := range r.nodes {
			if n != nil {
				n.Close(0) //nolint:errcheck
			}
		}
		return nil, err
	}
	r.drive()
	r.checkRecovered()
	r.checkGroundTruth()
	r.canaryRound()
	r.drain()
	// Snapshot-on-drain, after every node stopped mutating: the next
	// process (there is none — the temp dir dies with the run) would
	// recover with zero replay.
	for _, d := range r.durables {
		if d != nil {
			d.Close() //nolint:errcheck
		}
	}
	return r.res, nil
}

// buildMesh plants the stores and starts one cluster node per host.
func (r *run) buildMesh() error {
	if r.sc.LatencyMax > 0 {
		// Base link latency goes in before anything dials: a pair
		// freezes its fault window at dial time, so this is the only
		// ordering under which pooled carriers and per-session dials
		// price the same links.
		for i := 0; i < r.sc.Nodes; i++ {
			for j := i + 1; j < r.sc.Nodes; j++ {
				r.net.SetLatency(host(i), host(j), r.sc.LatencyMin, r.sc.LatencyMax)
			}
		}
		r.tracef("latency: all links %v..%v", r.sc.LatencyMin, r.sc.LatencyMax)
	}
	space := metric.HammingCube(scenarioDim)
	r.nodes = make([]*cluster.Node, r.sc.Nodes)
	for i := 0; i < r.sc.Nodes; i++ {
		st := store.New()
		if r.sc.Durable {
			d, err := durable.Open(filepath.Join(r.dataDir, host(i)), durable.Options{Fsync: durable.FsyncOff})
			if err != nil {
				return fmt.Errorf("scenario %q: %w", r.sc.Name, err)
			}
			r.durables[i] = d
			st.SetPersister(d)
		}
		for si, spec := range r.sc.Sets {
			base := r.points(spec.Base, uint64(si+1)*0xb45e)
			extras := r.points(spec.PerNode, uint64(si+1)*0xe57a+uint64(i+1)*0x101)
			capacity := spec.Capacity
			if capacity <= 0 {
				capacity = 4096
			}
			cfg := live.Config{Sync: &live.SyncConfig{Seed: scenarioSyncSeed}}
			if spec.EMD {
				p := emd.DefaultParams(space, capacity, 4, 7)
				cfg.EMD = &p
			}
			if _, err := st.Create(spec.Name, cfg, append(base.Clone(), extras...)); err != nil {
				return fmt.Errorf("scenario %q: %w", r.sc.Name, err)
			}
			r.expected[spec.Name] = append(r.expected[spec.Name], extras...)
			if i == 0 {
				r.expected[spec.Name] = append(r.expected[spec.Name], base...)
			}
		}
		if err := r.startNode(i, st); err != nil {
			return err
		}
	}
	for i, n := range r.nodes {
		n.SetPeers(r.peersOf(i))
	}
	if r.sc.Pipeline > 1 && !r.sc.DisableMux {
		// Pipelined rounds overlap sessions; establishing every carrier
		// now, sequentially and in node order, keeps the dial events in
		// the trace deterministic when the overlapped sessions start.
		for _, n := range r.nodes {
			n.Prewarm()
		}
		r.tracef("prewarm: pooled carriers established mesh-wide")
	}
	return nil
}

// startNode builds and starts node i over its store. The cluster seed
// derives only from the run seed and the index, so a restarted
// incarnation makes the same peer choices a never-killed one would.
func (r *run) startNode(i int, st *store.Store) error {
	n, err := cluster.New(cluster.Config{
		Store:          st,
		Network:        "sim",
		Interval:       -1, // harness-driven rounds
		Seed:           r.seed + uint64(i)*0x9e37,
		DialTimeout:    5 * time.Second,
		SessionTimeout: 30 * time.Second,
		DisableMux:     r.sc.DisableMux,
		Pipeline:       r.sc.Pipeline,
		Transport:      r.net.Host(host(i)),
	})
	if err != nil {
		return err
	}
	if _, err := n.Start(host(i) + ":1"); err != nil {
		return err
	}
	r.nodes[i] = n
	return nil
}

// peersOf lists every other node's address.
func (r *run) peersOf(i int) []string {
	var peers []string
	for j := 0; j < r.sc.Nodes; j++ {
		if j != i {
			peers = append(peers, host(j)+":1")
		}
	}
	return peers
}

// applyFaults installs every fault scheduled for the round.
func (r *run) applyFaults(round int) {
	for _, f := range r.sc.Faults {
		if f.Round != round {
			continue
		}
		switch f.Kind {
		case "partition":
			groups := make([][]string, len(f.Groups))
			for gi, g := range f.Groups {
				for _, ni := range g {
					groups[gi] = append(groups[gi], host(ni))
				}
			}
			r.tracef("fault: partition %v", groups)
			r.net.Partition(groups...)
		case "heal":
			r.tracef("fault: heal")
			r.net.Heal()
		case "latency":
			r.tracef("fault: latency %s--%s %v..%v", host(f.From), host(f.To), f.Min, f.Max)
			r.net.SetLatency(host(f.From), host(f.To), f.Min, f.Max)
		case "bandwidth":
			r.tracef("fault: bandwidth %s--%s %dB/s", host(f.From), host(f.To), f.BPS)
			r.net.SetBandwidth(host(f.From), host(f.To), f.BPS)
		case "drop":
			r.tracef("fault: drop %s--%s at offset %d", host(f.From), host(f.To), f.Offset)
			r.net.DropAfter(host(f.From), host(f.To), f.Offset)
		case "down":
			r.tracef("fault: down %s--%s", host(f.From), host(f.To))
			r.net.SetDown(host(f.From), host(f.To), true)
		case "up":
			r.tracef("fault: up %s--%s", host(f.From), host(f.To))
			r.net.SetDown(host(f.From), host(f.To), false)
		case "kill":
			r.killNode(f.From)
		case "restart":
			r.restartNode(f.From)
		default:
			r.failf("unknown fault kind %q at round %d", f.Kind, f.Round)
		}
	}
	if fl := r.sc.Flaky; fl != nil && round < fl.Rounds {
		a := r.flakySrc.Intn(r.sc.Nodes)
		b := r.flakySrc.Intn(r.sc.Nodes - 1)
		if b >= a {
			b++
		}
		off := 1 + int64(r.flakySrc.Uint64n(uint64(fl.MaxOffset)))
		r.tracef("fault: flaky drop %s--%s at offset %d", host(a), host(b), off)
		r.net.DropAfter(host(a), host(b), off)
	}
}

// killNode crashes node i: record its per-set fingerprints (the ground
// truth recovery must reproduce), close the node, and abandon its
// durable store without a final snapshot — the disk is left exactly as
// a process kill would leave it.
func (r *run) killNode(i int) {
	n := r.nodes[i]
	if n == nil {
		r.failf("kill: node %d is already down", i)
		return
	}
	fps := make(map[string]uint64, len(r.sc.Sets))
	for _, spec := range r.sc.Sets {
		if ls, ok := storeGet(n, spec.Name); ok {
			fps[spec.Name] = ls.IDFingerprint()
		}
	}
	r.killFP[i] = fps
	// Fold the dead incarnation's connection economy into the run
	// totals before its pool disappears.
	st := n.NetStats()
	r.netBase.Dials += st.Dials
	r.netBase.Sessions += st.Sessions
	r.netBase.Reuses += st.Reuses
	r.netBase.Fallbacks += st.Fallbacks
	n.Close(0) //nolint:errcheck
	r.durables[i].Crash()
	r.nodes[i] = nil
	r.tracef("fault: kill %s", host(i))
}

// restartNode brings node i back from its data directory: recover the
// store, assert every set's fingerprint equals the kill-time value
// (journal ground truth), and rejoin the mesh. The recovery stats go
// into the trace — replay counts are as deterministic as the mutation
// history that produced them.
func (r *run) restartNode(i int) {
	if r.nodes[i] != nil {
		r.failf("restart: node %d is not down", i)
		return
	}
	d, err := durable.Open(filepath.Join(r.dataDir, host(i)), durable.Options{Fsync: durable.FsyncOff})
	if err != nil {
		r.failf("restart node %d: %v", i, err)
		return
	}
	st := store.New()
	stats, err := d.Recover(st)
	if err != nil {
		r.failf("restart node %d: recover: %v", i, err)
		return
	}
	for _, spec := range r.sc.Sets {
		ls, ok := st.Get(spec.Name)
		if !ok {
			r.failf("restart node %d: set %q not recovered", i, spec.Name)
			continue
		}
		if got, want := ls.IDFingerprint(), r.killFP[i][spec.Name]; got != want {
			r.failf("restart node %d: set %q recovered fingerprint %016x != kill-time %016x", i, spec.Name, got, want)
		}
	}
	st.SetPersister(d)
	r.durables[i] = d
	if err := r.startNode(i, st); err != nil {
		r.failf("restart node %d: %v", i, err)
		return
	}
	r.nodes[i].SetPeers(r.peersOf(i))
	r.restarted[i] = true
	r.tracef("fault: restart %s (recovered %v)", host(i), stats)
}

// churn applies the add-wins-safe churn pattern on every node and set,
// extending the ground-truth union with the surviving point of each
// batch (the removed point dies inside its own batch and is never
// replicated).
func (r *run) churn(round int) {
	for i, n := range r.nodes {
		if n == nil {
			continue // killed nodes churn nothing
		}
		for si, spec := range r.sc.Sets {
			ls, ok := storeGet(n, spec.Name)
			if !ok {
				r.failf("node %d lost set %q", i, spec.Name)
				continue
			}
			for b := 0; b < r.sc.ChurnBatches; b++ {
				fresh := r.points(2, 0xcafe+uint64(round)*0x10000+uint64(i)*0x100+uint64(si)*0x10+uint64(b))
				err := ls.ApplyBatch([]live.Op{
					{Point: fresh[0]},
					{Point: fresh[1]},
					{Remove: true, Point: fresh[0]},
				})
				if err != nil {
					r.failf("churn round %d node %d set %q: %v", round, i, spec.Name, err)
					continue
				}
				r.expected[spec.Name] = append(r.expected[spec.Name], fresh[1])
			}
		}
	}
	r.tracef("churn: %d nodes x %d sets x %d batches", len(r.nodes), len(r.sc.Sets), r.sc.ChurnBatches)
}

// storeGet resolves a node's named set.
func storeGet(n *cluster.Node, name string) (*live.Set, bool) {
	return n.Store().Get(name)
}

// quiesce waits for every node's server to finish all accepted
// sessions, so state reads and the next sessions see settled sets.
func (r *run) quiesce() {
	for _, n := range r.nodes {
		if n != nil {
			n.Quiesce()
		}
	}
}

// fingerprintLine summarizes cross-node per-set fingerprints for the
// trace and reports whether every set matches everywhere.
func (r *run) fingerprintLine() (string, bool) {
	var b strings.Builder
	all := true
	for si, spec := range r.sc.Sets {
		var fp uint64
		match, first := true, true
		for _, n := range r.nodes {
			if n == nil {
				continue // killed nodes sit out the comparison
			}
			ls, ok := storeGet(n, spec.Name)
			if !ok {
				match = false
				continue
			}
			f := ls.IDFingerprint()
			if first {
				fp, first = f, false
			} else if f != fp {
				match = false
			}
		}
		if si > 0 {
			b.WriteString(" ")
		}
		name := spec.Name
		if name == "" {
			name = "<default>"
		}
		if match {
			fmt.Fprintf(&b, "%s=%016x", name, fp)
		} else {
			fmt.Fprintf(&b, "%s=DIVERGED", name)
			all = false
		}
	}
	return b.String(), all
}

// drive runs the scheduled rounds until the convergence streak or the
// round cap.
func (r *run) drive() {
	streak := 0
	for round := 0; round < r.sc.Rounds; round++ {
		r.res.RoundsRun = round + 1
		r.tracef("[round %03d]", round)
		r.applyFaults(round)
		if round < r.sc.ChurnRounds {
			r.churn(round)
		}
		for i, n := range r.nodes {
			if n == nil {
				r.tracef("node %d: down", i)
				continue
			}
			repaired, err := n.ReconcileOnce()
			// Barrier: a repair responder applies its merge after the
			// initiator's session returned, so the next node's round (and
			// the fingerprint line below) must wait for every server to
			// settle or the trace races the mesh's own goroutines.
			r.quiesce()
			if err != nil {
				r.tracef("node %d: reconcile repaired=%d err: %v", i, repaired, err)
			} else {
				r.tracef("node %d: reconcile repaired=%d", i, repaired)
			}
		}
		line, converged := r.fingerprintLine()
		r.tracef("state: %s", line)
		dialed := r.netBase.Dials
		for _, n := range r.nodes {
			if n != nil {
				dialed += n.NetStats().Dials
			}
		}
		for _, prev := range r.res.DialsByRound {
			dialed -= prev
		}
		r.res.DialsByRound = append(r.res.DialsByRound, dialed)
		if converged && round >= r.sc.ChurnRounds {
			streak++
			if streak >= r.sc.Streak {
				r.res.ConvergedRound = round
				r.tracef("converged: round %d (streak %d)", round, streak)
				break
			}
		} else {
			streak = 0
		}
	}
	if r.res.ConvergedRound < 0 {
		r.failf("not converged after %d rounds", r.res.RoundsRun)
	}
	// Per-set metrics, sorted, once the mesh settles: a deterministic
	// summary that widens the trace's nondeterminism-detection surface.
	for i, n := range r.nodes {
		if n == nil {
			continue
		}
		m := n.Metrics()
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			display := name
			if display == "" {
				display = "<default>"
			}
			r.tracef("metrics: node %d set %s: %v", i, display, m[name])
		}
	}
	// Connection economy across the mesh: under pooled carriers the
	// dial count stays near the peer-pair count while sessions grow
	// with rounds × sets; with DisableMux every session is a dial. The
	// line is part of the trace, so a regression in reuse (an
	// accidentally re-dialing pool, a carrier dropped per round) shows
	// up as a trace diff, not just a slower run.
	dials, sessions := r.netBase.Dials, r.netBase.Sessions
	reuses, fallbacks := r.netBase.Reuses, r.netBase.Fallbacks
	for _, n := range r.nodes {
		if n == nil {
			continue
		}
		st := n.NetStats()
		dials += st.Dials
		sessions += st.Sessions
		reuses += st.Reuses
		fallbacks += st.Fallbacks
	}
	r.res.Dials, r.res.Sessions = dials, sessions
	r.tracef("net: %d sessions over %d dials (%d reused, %d plain fallback)", sessions, dials, reuses, fallbacks)
}

// checkRecovered asserts the durable-recovery convergence economy:
// every restarted node re-converged via delta repair, not a full
// transfer — the points it received after restart are bounded by what
// it could actually have missed (everything planted beyond the shared
// base), and a full-set transfer of base plus extras would blow the
// bound.
func (r *run) checkRecovered() {
	for i := range r.nodes {
		if r.nodes[i] == nil {
			r.failf("node %d still down at end of run", i)
		}
	}
	for i := range r.restarted {
		n := r.nodes[i]
		if n == nil {
			continue
		}
		m := n.Metrics()
		for _, spec := range r.sc.Sets {
			bound := uint64(len(r.expected[spec.Name]) - spec.Base)
			if got := m[spec.Name].PointsReceived; got > bound {
				r.failf("restarted node %d set %q received %d points, delta bound %d (full transfer?)",
					i, spec.Name, got, bound)
			}
		}
	}
	if len(r.restarted) > 0 {
		r.tracef("recovery: %d restarted nodes re-converged within the delta bound", len(r.restarted))
	}
}

// checkGroundTruth verifies every node's every set equals the union the
// harness planted: same distinct count, same ID fingerprint.
func (r *run) checkGroundTruth() {
	for _, spec := range r.sc.Sets {
		// A reference set built straight from the planted union is the
		// ground truth: same Sync seed, so fingerprints are comparable.
		ref, err := live.NewSet(live.Config{Sync: &live.SyncConfig{Seed: scenarioSyncSeed}}, r.expected[spec.Name])
		if err != nil {
			r.failf("ground-truth set %q: %v", spec.Name, err)
			continue
		}
		fp, distinct := ref.IDFingerprint(), ref.Distinct()
		for i, n := range r.nodes {
			if n == nil {
				continue // already failed in checkRecovered
			}
			ls, ok := storeGet(n, spec.Name)
			if !ok {
				r.failf("node %d lost set %q", i, spec.Name)
				continue
			}
			if got := ls.IDFingerprint(); got != fp {
				r.failf("node %d set %q fingerprint %016x != ground-truth union %016x", i, spec.Name, got, fp)
			}
			if got := ls.Distinct(); got != distinct {
				r.failf("node %d set %q has %d distinct points, ground truth %d", i, spec.Name, got, distinct)
			}
		}
	}
	r.tracef("ground truth: %d sets checked against planted unions", len(r.sc.Sets))
}

// canaryRound is the pooled-buffer ownership check: poison a batch of
// pooled encoders (whose backing arrays are the recycled buffers of the
// run's sessions), hold them across one extra full anti-entropy round,
// and require the round to be all-noops with unchanged fingerprints. A
// handler that kept a reference into a recycled buffer — or recycled
// one it no longer owned — surfaces here as a corrupted frame or a
// diverged set.
func (r *run) canaryRound() {
	if r.res.ConvergedRound < 0 {
		return // nothing meaningful to check against
	}
	// The canary round asserts buffer ownership on a clean network: an
	// armed drop waiting on a link that was never dialed again, a link
	// a scripted schedule left down, or an unhealed partition would
	// all be mislabeled as canary failures.
	r.net.ClearFaults()
	before, ok := r.fingerprintLine()
	if !ok {
		r.failf("canary: mesh diverged before the canary round")
		return
	}
	release := PoisonPool(16, 4096)
	for i, n := range r.nodes {
		if n == nil {
			continue
		}
		if _, err := n.ReconcileOnce(); err != nil {
			r.failf("canary: node %d round errored: %v", i, err)
		}
		r.quiesce()
	}
	release()
	after, ok := r.fingerprintLine()
	if !ok || after != before {
		r.failf("canary: fingerprints changed under pooled-buffer poison: %s -> %s", before, after)
		return
	}
	r.tracef("canary: ok (poisoned pool, round stayed converged)")
}

// PoisonPool grabs count pooled encoders — whose backing arrays are
// recycled session buffers — and scribbles size bytes of junk into
// each, holding them until the returned release func runs. Any code
// path that kept a reference into pooled memory it no longer owns is
// exposed while the poison is live. Shared by the scenario canary
// round and the mid-stream failure matrix.
func PoisonPool(count, size int) (release func()) {
	junk := make([]byte, size)
	for i := range junk {
		junk[i] = 0xde
	}
	poison := make([]*transport.Encoder, count)
	for i := range poison {
		poison[i] = transport.NewEncoder()
		poison[i].WriteBytes(junk)
	}
	return func() {
		for _, p := range poison {
			data, _ := p.Pack()
			transport.Recycle(p, data) // encoder and poison buffer go back to the pool
		}
	}
}

// drain closes every node with a bounded drain and checks the virtual
// network for leaked connections.
func (r *run) drain() {
	for i, n := range r.nodes {
		if n == nil {
			continue
		}
		if err := n.Close(2 * time.Second); err != nil {
			r.failf("drain: node %d close: %v", i, err)
		}
	}
	if open := r.net.OpenConns(); open != 0 {
		r.failf("drain: %d connection endpoints leaked", open)
	} else {
		r.tracef("drain: ok (0 leaked conns)")
	}
}

package scenario

import (
	"strings"
	"testing"
	"time"
)

// TestBuiltinScenariosConverge is the acceptance sweep: every shipped
// scenario, run at a fixed seed, must end with all nodes' sets
// converged (fingerprint-equal AND equal to the planted ground-truth
// union), no leaked connections, and a clean pooled-buffer canary.
// Run under -race in CI.
func TestBuiltinScenariosConverge(t *testing.T) {
	for _, sc := range Builtin() {
		t.Run(sc.Name, func(t *testing.T) {
			if raceEnabled && sc.Nodes >= 100 {
				t.Skip("mesh-100 is covered uninstrumented (TestMesh100Replay and the CI replay step)")
			}
			t.Parallel() // independent networks; inner driving stays sequential
			res, err := Run(sc, 42)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Ok() {
				for _, f := range res.Failures {
					t.Errorf("invariant: %s", f)
				}
				t.Logf("trace:\n%s", res.TraceText())
			}
			if res.ConvergedRound < 0 {
				t.Fatalf("never converged in %d rounds", res.RoundsRun)
			}
			t.Logf("%s: converged at round %d of %d", sc.Name, res.ConvergedRound, res.RoundsRun)
		})
	}
}

// TestReplayDeterminism runs the same scenario+seed twice and requires
// byte-identical traces — the property that makes a simnet failure
// reproducible from nothing but its seed.
func TestReplayDeterminism(t *testing.T) {
	sc, ok := Lookup("partition-rejoin")
	if !ok {
		t.Fatal("partition-rejoin not in catalog")
	}
	r1, err := Run(sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := r1.TraceText(), r2.TraceText()
	if t1 != t2 {
		a, b := strings.Split(t1, "\n"), strings.Split(t2, "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("traces diverge at line %d:\n  run1: %s\n  run2: %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("traces differ in length: %d vs %d lines", len(a), len(b))
	}
	// Different seeds must explore different executions (otherwise the
	// seed plumbing is dead and the determinism above is vacuous).
	r3, err := Run(sc, 43)
	if err != nil {
		t.Fatal(err)
	}
	if r3.TraceText() == t1 {
		t.Fatal("seed 42 and seed 43 produced identical traces; seed is not reaching the run")
	}
}

// TestPartitionActuallyPartitions asserts the scripted fault bites: the
// trace of partition-rejoin must show refused cross-partition dials
// before the heal, and the isolated node must still catch up after.
func TestPartitionActuallyPartitions(t *testing.T) {
	sc, _ := Lookup("partition-rejoin")
	res, err := Run(sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	trace := res.TraceText()
	if !strings.Contains(trace, "host unreachable (partition)") {
		t.Fatal("no cross-partition dial was refused; the partition fault never bit")
	}
	if !strings.Contains(trace, "fault: heal") {
		t.Fatal("heal fault missing from trace")
	}
	if !res.Ok() {
		t.Fatalf("invariants failed: %v", res.Failures)
	}
}

// TestFlakyDropsBite asserts the soak scenario's random drops actually
// sever connections mid-protocol (cut events in the trace) and the
// mesh still converges exactly.
func TestFlakyDropsBite(t *testing.T) {
	sc, _ := Lookup("flaky-link-soak")
	res, err := Run(sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.TraceText(), "cut") {
		t.Fatal("soak ran with zero connection cuts; drops never bit")
	}
	if !res.Ok() {
		t.Fatalf("invariants failed: %v", res.Failures)
	}
}

// TestScenarioValidation pins the error paths of Run.
func TestScenarioValidation(t *testing.T) {
	if _, err := Run(Scenario{Name: "x", Nodes: 1, Rounds: 1, Sets: []SetSpec{{}}}, 1); err == nil {
		t.Fatal("1-node scenario accepted")
	}
	if _, err := Run(Scenario{Name: "x", Nodes: 2, Rounds: 1}, 1); err == nil {
		t.Fatal("0-set scenario accepted")
	}
	if _, err := Run(Scenario{Name: "x", Nodes: 2, Sets: []SetSpec{{Base: 2}}}, 1); err == nil {
		t.Fatal("0-round scenario accepted")
	}
}

// TestDownLinkFaultSchedule exercises the down/up fault kinds on a
// custom scenario: the link is down for the early rounds (probe
// failures and backoff), comes back, and the pair still converges.
func TestDownLinkFaultSchedule(t *testing.T) {
	sc := Scenario{
		Name:        "down-up",
		Nodes:       2,
		Sets:        []SetSpec{{Name: "", Base: 10, PerNode: 3, Capacity: 128}},
		Rounds:      24,
		ChurnRounds: 2,
		Faults: []Fault{
			{Round: 0, Kind: "down", From: 0, To: 1},
			{Round: 4, Kind: "up", From: 0, To: 1},
		},
	}
	res, err := Run(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.TraceText(), "link down") {
		t.Fatal("down fault never bit")
	}
	if !res.Ok() {
		t.Fatalf("invariants failed: %v\ntrace:\n%s", res.Failures, res.TraceText())
	}
}

// TestLatencyScenarioBounded keeps the asymmetric-latency run's wall
// clock sane: injected delays are microsecond-to-millisecond scale and
// must not balloon the run (which would mean delays are being applied
// somewhere they shouldn't).
func TestLatencyScenarioBounded(t *testing.T) {
	sc, _ := Lookup("asymmetric-latency")
	start := time.Now()
	res, err := Run(sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("invariants failed: %v", res.Failures)
	}
	if d := time.Since(start); d > 2*time.Minute {
		t.Fatalf("asymmetric-latency took %v; injected latency is compounding somewhere", d)
	}
}

// TestCrashRecoverScenario pins the durable kill/restart semantics:
// the killed node sits out its down rounds, restarts with fingerprints
// matching the kill-time journal ground truth (a mismatch is a Failure,
// so Ok() covers it), re-converges within the delta bound, and the
// whole run replays byte-identically from its seed.
func TestCrashRecoverScenario(t *testing.T) {
	sc, ok := Lookup("crash-recover")
	if !ok {
		t.Fatal("crash-recover scenario missing from catalog")
	}
	a, err := Run(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Ok() {
		for _, f := range a.Failures {
			t.Errorf("invariant: %s", f)
		}
		t.Fatalf("trace:\n%s", a.TraceText())
	}
	trace := a.TraceText()
	for _, want := range []string{
		"fault: kill node2",
		"node 2: down",
		"fault: restart node2 (recovered 2 sets",
		"recovery: 1 restarted nodes re-converged within the delta bound",
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace is missing %q", want)
		}
	}
	b, err := Run(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if trace != b.TraceText() {
		t.Fatalf("crash-recover trace is not replay-deterministic")
	}
}

// TestKillRequiresDurable rejects kill/restart faults on a
// non-durable scenario at validation time.
func TestKillRequiresDurable(t *testing.T) {
	sc, _ := Lookup("crash-recover")
	sc.Durable = false
	if _, err := Run(sc, 1); err == nil {
		t.Fatal("kill fault accepted without Durable")
	}
}

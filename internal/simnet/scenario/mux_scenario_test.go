package scenario

import "testing"

// TestMuxDialAmortization is the dial-economy gate for pooled RSYN v3
// carriers: the same scenario at the same seed, run once as shipped
// (mux) and once with DisableMux, must converge identically while the
// mux run amortizes dialing. Plain dials once per session; a pooled
// mesh front-loads its dials (round 0, plus prewarm when pipelined)
// and its steady rounds must dial at least 5x less than plain's.
func TestMuxDialAmortization(t *testing.T) {
	for _, name := range []string{"asymmetric-latency", "mesh-10-latency"} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, ok := Lookup(name)
			if !ok {
				t.Fatalf("scenario %q not registered", name)
			}
			mux, err := Run(sc, 42)
			if err != nil {
				t.Fatal(err)
			}
			plainSc := sc
			plainSc.DisableMux = true
			plain, err := Run(plainSc, 42)
			if err != nil {
				t.Fatal(err)
			}
			for side, res := range map[string]*Result{"mux": mux, "plain": plain} {
				if !res.Ok() {
					t.Fatalf("%s run failed invariants:\n%s", side, res.TraceText())
				}
				if res.ConvergedRound < 0 {
					t.Fatalf("%s run never converged", side)
				}
			}
			// Transport economy must not change what converges or how much
			// work it takes: same rounds, same session count.
			if mux.ConvergedRound != plain.ConvergedRound || mux.Sessions != plain.Sessions {
				t.Fatalf("transports diverged: mux converged=%d sessions=%d, plain converged=%d sessions=%d",
					mux.ConvergedRound, mux.Sessions, plain.ConvergedRound, plain.Sessions)
			}
			// Plain has no pool: every session is a dial, spread evenly
			// across the rounds.
			if plain.Dials != plain.Sessions {
				t.Fatalf("plain run pooled connections: %d dials for %d sessions", plain.Dials, plain.Sessions)
			}
			// Mux dials strictly less in total...
			if mux.Dials >= plain.Dials {
				t.Fatalf("mux did not reduce dials: %d mux vs %d plain", mux.Dials, plain.Dials)
			}
			// ...and ≥5x less per steady round: once the carriers exist
			// (after round 0), reconciliation rides them.
			if len(mux.DialsByRound) < 2 || len(plain.DialsByRound) != len(mux.DialsByRound) {
				t.Fatalf("per-round dial shape mismatch: mux %v vs plain %v", mux.DialsByRound, plain.DialsByRound)
			}
			var muxSteady, plainSteady uint64
			for _, d := range mux.DialsByRound[1:] {
				muxSteady += d
			}
			for _, d := range plain.DialsByRound[1:] {
				plainSteady += d
			}
			if muxSteady*5 > plainSteady {
				t.Fatalf("steady rounds not ≥5x cheaper: mux dialed %d vs plain %d after round 0 (mux per-round %v, plain %v)",
					muxSteady, plainSteady, mux.DialsByRound, plain.DialsByRound)
			}
			t.Logf("%s: mux %d dials / %d sessions (per-round %v); plain %d dials (per-round %v)",
				name, mux.Dials, mux.Sessions, mux.DialsByRound, plain.Dials, plain.DialsByRound)
		})
	}
}

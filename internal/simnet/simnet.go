// Package simnet is a deterministic, fault-injecting virtual network:
// an in-memory implementation of net.Listener / net.Conn that the
// session and cluster layers can run over unchanged (they dial and
// listen through the session.Transport abstraction), with scriptable
// faults — per-link latency distributions, bandwidth caps, connection
// drops at byte offset N, downed links, and named partitions.
//
// Determinism is the point. All randomness (latency samples) derives
// from the network seed via internal/rng, split per connection in dial
// order; connection byte streams are synchronous pipes, so for the
// half-duplex, strictly alternating frame protocols this stack speaks,
// every byte crosses each link in one reproducible order. A scenario
// driven sequentially over a simnet (see simnet/scenario) therefore
// produces the same event trace for the same seed, and a failure found
// at seed S is replayed exactly by running seed S again.
//
// Faults produce deterministic *errors* too: when a fault severs a
// connection, both endpoints report the same canonical cut error from
// every subsequent operation, rather than whichever of EOF /
// closed-pipe the teardown race would have produced.
//
// What simnet does not model: virtual time. Latency and bandwidth
// faults are real (deterministically sampled) sleeps on the writer's
// side, so they exercise ordering and slow-peer behavior, but a
// scenario's wall-clock time grows with its injected latency, and
// traces remain deterministic only while injected delays stay well
// under the stack's session deadlines (the shipped scenarios keep
// microsecond-to-millisecond latencies against minute-scale deadlines).
package simnet

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

// Addr is a simnet endpoint address. The string form is "host:port";
// everything before the last colon names the host (the unit of
// partitioning), the rest distinguishes listeners on one host.
type Addr string

// Network names the virtual network ("sim").
func (Addr) Network() string { return "sim" }

// String returns the address in "host:port" form.
func (a Addr) String() string { return string(a) }

// hostOf extracts the host (partition unit) from an address.
func hostOf(addr string) string {
	if i := strings.LastIndex(addr, ":"); i >= 0 {
		return addr[:i]
	}
	return addr
}

// linkKey identifies the unordered host pair a connection crosses.
type linkKey struct{ a, b string }

func keyOf(h1, h2 string) linkKey {
	if h1 > h2 {
		h1, h2 = h2, h1
	}
	return linkKey{h1, h2}
}

// Event is one connection-level occurrence, delivered to OnEvent in a
// deterministic order (see Network.OnEvent).
type Event struct {
	// Kind is "dial", "refused", "cut", or "flip".
	Kind string
	// From and To are the host names (dialer first for dial events).
	From, To string
	// Detail is the refusal reason or the cut byte offset.
	Detail string
}

// String renders the event as one stable trace line.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%s %s->%s", e.Kind, e.From, e.To)
	}
	return fmt.Sprintf("%s %s->%s (%s)", e.Kind, e.From, e.To, e.Detail)
}

// link holds the configured faults for one host pair. The zero value is
// a clean link.
type link struct {
	latMin, latMax time.Duration
	bps            int64 // bytes/second, 0 = unlimited
	down           bool
	dropAt         int64 // armed cut offset for the NEXT conn; -1 = none
	flipAt         int64 // armed corruption offset for the NEXT conn; -1 = none
	flipLen        int   // corruption window length in bytes
	connSeq        uint64
	pairs          []*pair // every conn ever opened on the link, dial order
}

// Network is the virtual network: a registry of hosts, listeners,
// per-link fault state, and open connections. Construct with New; all
// methods are safe for concurrent use.
type Network struct {
	seed uint64

	// OnEvent, when set (before any traffic), receives connection
	// events. Dial and refusal events fire on the dialing goroutine. A
	// drop-at-offset cut event fires on the goroutine whose write
	// crossed the fault offset, strictly before any byte of that chunk
	// is delivered — so even when the cut lands exactly on a frame
	// boundary (the peer receives a complete frame and carries on),
	// everything downstream of that frame is ordered after the event.
	// A single-threaded driver therefore sees events in a
	// deterministic order. The callback runs with internal locks held:
	// it must not call back into the Network, and it must be
	// internally synchronized (it may fire from connection
	// goroutines).
	OnEvent func(Event)

	mu        sync.Mutex
	listeners map[string]*listener
	links     map[linkKey]*link
	group     map[string]int // partition group per host; absent = 0
	open      int            // unclosed conn endpoints
}

// New builds an empty network. The seed drives every latency sample;
// two networks with the same seed and the same (deterministic) usage
// behave identically.
func New(seed uint64) *Network {
	return &Network{
		seed:      seed,
		listeners: make(map[string]*listener),
		links:     make(map[linkKey]*link),
		group:     make(map[string]int),
	}
}

// Host returns a handle dialing and listening as the named host. It
// implements the session.Transport interface, so it can be plugged
// directly into session.Config, session.Dialer, and cluster.Config.
func (n *Network) Host(name string) *Host { return &Host{n: n, name: name} }

// linkLocked returns (creating if needed) the host pair's link state.
// Caller holds n.mu.
func (n *Network) linkLocked(k linkKey) *link {
	l := n.links[k]
	if l == nil {
		l = &link{dropAt: -1, flipAt: -1}
		n.links[k] = l
	}
	return l
}

func (n *Network) emitLocked(e Event) {
	if n.OnEvent != nil {
		n.OnEvent(e)
	}
}

// SetLatency configures the link between hosts a and b to delay every
// delivered chunk by a uniform sample from [min, max] (sampled from a
// per-connection deterministic stream). Zero durations clear it.
func (n *Network) SetLatency(a, b string, min, max time.Duration) {
	if max < min {
		min, max = max, min
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.linkLocked(keyOf(a, b))
	l.latMin, l.latMax = min, max
}

// SetBandwidth caps the link between a and b at bps bytes per second
// (0 = unlimited), modeled as a per-chunk writer-side delay.
func (n *Network) SetBandwidth(a, b string, bps int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLocked(keyOf(a, b)).bps = bps
}

// DropAfter arms a one-shot fault on the a—b link: the next connection
// opened between the hosts is severed as soon as offset cumulative
// bytes (both directions combined) have crossed it. Offset 0 cuts
// before the first byte — a reset in the middle of the dial handshake.
func (n *Network) DropAfter(a, b string, offset int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLocked(keyOf(a, b)).dropAt = offset
}

// FlipAfter arms a one-shot corruption fault on the a—b link (the
// sibling of DropAfter): on the next connection opened between the
// hosts, the count bytes starting at cumulative offset (both directions
// combined) are delivered bitwise-inverted instead of severed. The
// connection stays up — corruption is silent at the transport layer;
// only an integrity check above (frame checksums, verify-before-merge)
// can notice. A "flip" event is emitted per delivered chunk the window
// touches, before any byte of that chunk is delivered.
func (n *Network) FlipAfter(a, b string, offset int64, count int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.linkLocked(keyOf(a, b))
	l.flipAt = offset
	l.flipLen = count
}

// ClearFaults returns the network to a clean reachable state: every
// link-level armed DropAfter is disarmed, every downed link comes
// back up, and any partition heals. Latency and bandwidth shaping stay
// in place (they degrade, not sever), and a drop already inherited by
// a live connection at dial time stays with that connection — a
// harness that needs a fully fault-free phase must let in-flight
// connections finish first (as the scenario canary round does by
// quiescing every node). Call this when a fault window ends, so a drop
// scripted on a link that was never dialed again — or a link left down
// — cannot fire during a later phase that asserts on a clean network.
func (n *Network) ClearFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.links {
		l.dropAt = -1
		l.flipAt = -1
		l.down = false
	}
	n.group = make(map[string]int)
}

// SetDown marks the a—b link down (dials fail, live connections are
// severed) or back up.
func (n *Network) SetDown(a, b string, down bool) {
	n.mu.Lock()
	l := n.linkLocked(keyOf(a, b))
	l.down = down
	var cut []*pair
	if down {
		cut = append(cut, l.pairs...)
	}
	n.mu.Unlock()
	cutAll(cut, "link down")
}

// cutAll severs the still-live pairs of the batch in a deterministic
// order (link key, then dial sequence): candidates are collected from
// map iteration, and already-dead connections must neither emit events
// nor have their order observed.
func cutAll(pairs []*pair, reason string) {
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.key != b.key {
			if a.key.a != b.key.a {
				return a.key.a < b.key.a
			}
			return a.key.b < b.key.b
		}
		return a.id < b.id
	})
	for _, p := range pairs {
		if p.alive() {
			p.cut(reason)
		}
	}
}

// Partition splits the hosts into isolated groups: hosts in different
// listed groups (or in no listed group — those form one implicit
// remainder group) cannot dial each other, and live connections across
// the divide are severed. A later call replaces the whole partition;
// Heal removes it.
func (n *Network) Partition(groups ...[]string) {
	n.mu.Lock()
	n.group = make(map[string]int)
	for gi, g := range groups {
		for _, h := range g {
			n.group[h] = gi + 1
		}
	}
	var cut []*pair
	for _, l := range n.links {
		for _, p := range l.pairs {
			if n.group[p.key.a] != n.group[p.key.b] {
				cut = append(cut, p)
			}
		}
	}
	n.mu.Unlock()
	cutAll(cut, "partition")
}

// Heal removes the partition; all hosts can reach each other again.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = make(map[string]int)
}

// OpenConns returns the number of connection endpoints not yet closed —
// the session-leak check scenarios run after draining their nodes.
func (n *Network) OpenConns() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.open
}

// ConnWrites returns, for each connection ever opened between a and b
// (in dial order), the sizes of the chunks delivered across it in
// delivery order. Cumulative sums are exactly the frame boundaries of
// the alternating protocols above, which is how the mid-stream failure
// matrix discovers the offsets to cut at.
func (n *Network) ConnWrites(a, b string) [][]int {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.links[keyOf(a, b)]
	if l == nil {
		return nil
	}
	out := make([][]int, len(l.pairs))
	for i, p := range l.pairs {
		p.mu.Lock()
		out[i] = append([]int(nil), p.writes...)
		p.mu.Unlock()
	}
	return out
}

// Host is a named endpoint of the network; see Network.Host.
type Host struct {
	n    *Network
	name string
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Listen implements the transport interface: it binds a listener at
// addr, whose host part must be this host's name. The network string is
// ignored (by convention "sim").
func (h *Host) Listen(network, addr string) (net.Listener, error) {
	if hostOf(addr) != h.name {
		return nil, fmt.Errorf("simnet: host %q cannot listen on %q", h.name, addr)
	}
	n := h.n
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.listeners[addr]; dup {
		return nil, fmt.Errorf("simnet: listen %s: address already in use", addr)
	}
	l := &listener{n: n, addr: Addr(addr), ch: make(chan net.Conn, 64), done: make(chan struct{})}
	n.listeners[addr] = l
	return l, nil
}

// DialTimeout implements the transport interface: it connects this host
// to the listener at addr, applying the link's partition, down, drop,
// latency, and bandwidth faults. The network string is ignored.
func (h *Host) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	n := h.n
	to := hostOf(addr)
	key := keyOf(h.name, to)
	n.mu.Lock()
	refuse := func(reason string) (net.Conn, error) {
		n.emitLocked(Event{Kind: "refused", From: h.name, To: to, Detail: reason})
		n.mu.Unlock()
		return nil, fmt.Errorf("simnet: dial %s from %s: %s", addr, h.name, reason)
	}
	if n.group[h.name] != n.group[to] {
		return refuse("host unreachable (partition)")
	}
	lk := n.linkLocked(key)
	if lk.down {
		return refuse("link down")
	}
	l := n.listeners[addr]
	if l == nil {
		return refuse("connection refused")
	}
	lk.connSeq++
	p := &pair{
		n:        n,
		key:      key,
		id:       lk.connSeq,
		dropAt:   lk.dropAt,
		flipAt:   lk.flipAt,
		flipLen:  lk.flipLen,
		latMin:   lk.latMin,
		latMax:   lk.latMax,
		bps:      lk.bps,
		openEnds: 2,
		latSrc:   rng.New(n.seed ^ hashLink(key) ^ (lk.connSeq * 0x9e3779b97f4a7c15)),
	}
	lk.dropAt = -1 // one-shot: the armed faults belong to this conn
	lk.flipAt = -1
	r1, r2 := net.Pipe()
	local := Addr(fmt.Sprintf("%s:c%d", h.name, p.id))
	cl := &Conn{p: p, raw: r1, local: local, remote: Addr(addr)}
	sv := &Conn{p: p, raw: r2, local: Addr(addr), remote: local}
	p.c1, p.c2 = r1, r2
	lk.pairs = append(lk.pairs, p)
	n.open += 2
	n.emitLocked(Event{Kind: "dial", From: h.name, To: to})
	// A dial costs one round trip on a latency-faulted link (the
	// handshake analogue): two one-way samples, slept before the
	// connection is usable. Wall-clock only, nothing extra is traced —
	// this is what makes dial-per-set latency-bound, so connection
	// reuse shows up as time saved from nothing but a seed. The samples
	// come from the pair's own RNG (not yet shared: the server end is
	// handed off below), keeping every draw deterministic.
	var rtt time.Duration
	if p.latMax > 0 {
		for i := 0; i < 2; i++ {
			d := p.latMin
			if span := p.latMax - p.latMin; span > 0 {
				d += time.Duration(p.latSrc.Uint64n(uint64(span) + 1))
			}
			rtt += d
		}
	}
	n.mu.Unlock()
	if rtt > 0 {
		time.Sleep(rtt)
	}

	// Hand the server end to the listener. The buffer makes this
	// immediate in the common case; a full backlog waits for an accept,
	// bounded by the dial timeout.
	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case l.ch <- sv:
		// The listener may have closed (and drained its queue) between
		// the send becoming ready and it winning the select; in that
		// window the queued conn would never be accepted. Closing our
		// own endpoints is safe either way — Close is idempotent, and a
		// drain that pulls the conn later just closes it again.
		select {
		case <-l.done:
			cl.Close()
			sv.Close()
			return nil, fmt.Errorf("simnet: dial %s from %s: connection refused", addr, h.name)
		default:
			return cl, nil
		}
	case <-l.done:
		cl.Close()
		sv.Close()
		return nil, fmt.Errorf("simnet: dial %s from %s: connection refused", addr, h.name)
	case <-expired:
		cl.Close()
		sv.Close()
		return nil, fmt.Errorf("simnet: dial %s from %s: timeout", addr, h.name)
	}
}

// listener is a simnet net.Listener: a queue of server-side conn ends.
type listener struct {
	n    *Network
	addr Addr
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		// Drain conns that were queued before the close raced in, so
		// their dialers fail instead of hanging on a half-open pipe.
		for {
			select {
			case c := <-l.ch:
				c.Close()
			default:
				return nil, fmt.Errorf("simnet: accept %s: %w", l.addr, net.ErrClosed)
			}
		}
	}
}

// Close implements net.Listener. Queued, never-accepted connections are
// closed; established ones are untouched.
func (l *listener) Close() error {
	l.once.Do(func() {
		l.n.mu.Lock()
		delete(l.n.listeners, string(l.addr))
		l.n.mu.Unlock()
		close(l.done)
		for {
			select {
			case c := <-l.ch:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr implements net.Listener.
func (l *listener) Addr() net.Addr { return l.addr }

// pair is the state shared by a connection's two endpoints: the fault
// configuration frozen at dial time, the byte/chunk accounting, and the
// cut flag that makes fault-severed connections fail deterministically.
type pair struct {
	n   *Network
	key linkKey
	id  uint64

	latMin, latMax time.Duration
	bps            int64
	latSrc         *rng.Source

	mu       sync.Mutex
	bytes    int64
	writes   []int
	dropAt   int64 // cut when bytes crosses this; -1 = none
	flipAt   int64 // invert [flipAt, flipAt+flipLen) on delivery; -1 = none
	flipLen  int
	isCut    bool
	cutErr   error
	openEnds int // endpoints not yet closed; 0 = dead, exempt from link faults
	c1, c2   net.Conn
}

// alive reports whether either endpoint is still open.
func (p *pair) alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.openEnds > 0 && !p.isCut
}

// cut severs the connection: every subsequent (and every currently
// blocked) operation on either endpoint fails with the same canonical
// error. The event is emitted before the pipes close, so a driver
// blocked on this connection observes it only after the event is on
// record.
func (p *pair) cut(reason string) {
	p.mu.Lock()
	if p.isCut {
		p.mu.Unlock()
		return
	}
	p.isCut = true
	offset := p.bytes
	p.cutErr = fmt.Errorf("simnet: connection %s--%s cut (%s) at byte offset %d", p.key.a, p.key.b, reason, offset)
	p.mu.Unlock()
	p.n.mu.Lock()
	p.n.emitLocked(Event{Kind: "cut", From: p.key.a, To: p.key.b, Detail: fmt.Sprintf("%s @%dB", reason, offset)})
	p.n.mu.Unlock()
	p.c1.Close()
	p.c2.Close()
}

// hashLink folds a link key into the per-connection RNG seed (FNV-1a).
func hashLink(k linkKey) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, s := range [2]string{k.a, k.b} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 0x100000001b3
		}
		h ^= '|'
		h *= 0x100000001b3
	}
	return h
}

// Conn is one endpoint of a simnet connection. It implements net.Conn;
// deadlines are delegated to the underlying synchronous pipe.
type Conn struct {
	p             *pair
	raw           net.Conn
	local, remote Addr
	closeOnce     sync.Once
}

// Read implements net.Conn. After a fault severs the connection, every
// read returns the pair's canonical cut error (never a racy EOF /
// closed-pipe alternative).
func (c *Conn) Read(b []byte) (int, error) {
	n, err := c.raw.Read(b)
	if err != nil {
		if cutErr := c.cutError(); cutErr != nil {
			return n, cutErr
		}
	}
	return n, err
}

// Write implements net.Conn: it applies the sampled latency and
// bandwidth delay, delivers to the peer (synchronously — the write
// returns once the peer has consumed the chunk), accounts the bytes,
// and triggers an armed drop-at-offset fault when the cumulative count
// crosses it. A write that crosses the offset delivers the bytes up to
// the boundary, then severs the connection and reports a short write
// with the canonical cut error.
func (c *Conn) Write(b []byte) (int, error) {
	p := c.p
	p.mu.Lock()
	if p.isCut {
		err := p.cutErr
		p.mu.Unlock()
		return 0, err
	}
	chunkStart := p.bytes
	allowed := len(b)
	willCut := false
	if p.dropAt >= 0 {
		rem := p.dropAt - p.bytes
		if rem <= int64(len(b)) {
			willCut = true
			if rem < 0 {
				rem = 0
			}
			allowed = int(rem)
		}
	}
	// Overlap of this chunk with an armed corruption window: the
	// affected range is inverted at delivery (on a copy — the caller's
	// buffer is never mutated). The window disarms once its end has
	// been crossed; until then it keeps flipping every chunk it
	// touches.
	flipLo, flipHi := 0, 0
	if p.flipAt >= 0 && allowed > 0 {
		lo := p.flipAt - chunkStart
		hi := p.flipAt + int64(p.flipLen) - chunkStart
		if lo < int64(allowed) && hi > 0 {
			if lo < 0 {
				lo = 0
			}
			if hi > int64(allowed) {
				hi = int64(allowed)
			}
			flipLo, flipHi = int(lo), int(hi)
		}
		if p.flipAt+int64(p.flipLen) <= chunkStart+int64(allowed) {
			p.flipAt = -1
		}
	}
	// Reserve the chunk's bytes NOW, atomically with the fault check.
	// Delivery blocks until the peer consumes the chunk, and for the
	// alternating protocols above the peer's next write begins only
	// after that — so reservation order equals delivery order, and the
	// peer's fault check is guaranteed to see this chunk accounted.
	// (Accounting after delivery instead would race: the writer's
	// post-write bookkeeping runs concurrently with the reader's next
	// send.)
	p.bytes += int64(allowed)
	if allowed > 0 {
		p.writes = append(p.writes, allowed)
	}
	if willCut {
		// The connection is cut as of this reservation: mark it and put
		// the event on record BEFORE any byte of the chunk is delivered,
		// so even a cut landing exactly on a frame boundary — where the
		// peer receives a complete frame and carries on — is traced
		// before anything downstream of that frame can be. (Emitting
		// after delivery would race the driver's own trace lines.)
		p.isCut = true
		offset := p.bytes
		p.cutErr = fmt.Errorf("simnet: connection %s--%s cut (drop-at-offset) at byte offset %d", p.key.a, p.key.b, offset)
		p.mu.Unlock()
		p.n.mu.Lock()
		p.n.emitLocked(Event{Kind: "cut", From: p.key.a, To: p.key.b, Detail: fmt.Sprintf("drop-at-offset @%dB", offset)})
		p.n.mu.Unlock()
		p.mu.Lock()
	}
	if flipHi > flipLo {
		// Like the cut event: on record before any byte of the
		// corrupted chunk is delivered, so the trace orders the fault
		// ahead of everything downstream of it.
		lo, hi := chunkStart+int64(flipLo), chunkStart+int64(flipHi)
		p.mu.Unlock()
		p.n.mu.Lock()
		p.n.emitLocked(Event{Kind: "flip", From: p.key.a, To: p.key.b, Detail: fmt.Sprintf("@%dB+%d", lo, hi-lo)})
		p.n.mu.Unlock()
		p.mu.Lock()
	}
	var delay time.Duration
	if p.latMax > 0 {
		delay = p.latMin
		if span := p.latMax - p.latMin; span > 0 {
			delay += time.Duration(p.latSrc.Uint64n(uint64(span) + 1))
		}
	}
	if p.bps > 0 && allowed > 0 {
		delay += time.Duration(int64(allowed) * int64(time.Second) / p.bps)
	}
	p.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	var n int
	var err error
	if allowed > 0 {
		buf := b[:allowed]
		if flipHi > flipLo {
			cp := make([]byte, allowed)
			copy(cp, buf)
			for i := flipLo; i < flipHi; i++ {
				cp[i] ^= 0xff
			}
			buf = cp
		}
		n, err = c.raw.Write(buf)
	}
	if willCut && err == nil {
		// Close both ends only after the boundary bytes were consumed.
		p.c1.Close()
		p.c2.Close()
		p.mu.Lock()
		err = p.cutErr
		p.mu.Unlock()
		return n, err
	}
	if err != nil {
		if cutErr := c.cutError(); cutErr != nil {
			return n, cutErr
		}
		return n, err
	}
	if n < len(b) {
		return n, fmt.Errorf("simnet: short write on %s--%s", p.key.a, p.key.b)
	}
	return n, nil
}

// cutError returns the pair's canonical error when the connection has
// been severed by a fault, nil otherwise.
func (c *Conn) cutError() error {
	c.p.mu.Lock()
	defer c.p.mu.Unlock()
	if c.p.isCut {
		return c.p.cutErr
	}
	return nil
}

// Close implements net.Conn. Closing one endpoint delivers EOF to the
// peer (normal session teardown); it is idempotent.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.raw.Close()
		c.p.mu.Lock()
		c.p.openEnds--
		c.p.mu.Unlock()
		c.p.n.mu.Lock()
		c.p.n.open--
		c.p.n.mu.Unlock()
	})
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// The cut error intentionally does not implement net.Error: a severed
// connection is terminal, and the session accept loop's Temporary()
// retry path must not spin on it.
var (
	_ net.Conn     = (*Conn)(nil)
	_ net.Listener = (*listener)(nil)
)

package simnet_test

import (
	"testing"
	"time"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/netproto"
	"repro/internal/rng"
	"repro/internal/session"
	"repro/internal/setsets"
	"repro/internal/simnet"
	"repro/internal/simnet/scenario"
	"repro/internal/workload"
)

// The mid-stream failure matrix: every registered protocol, with the
// connection severed at every frame boundary (and mid-frame), via
// simnet's drop-at-offset fault. The server must surface an error for
// the broken session (never a hang, a false success, or a panic), the
// virtual network must end with zero leaked connections, and a
// poisoned-pool verification session must still succeed afterwards —
// the failed session released its pooled buffers instead of retaining
// or double-recycling them. Run under -race in CI.

// protoCase builds FRESH server/client state per call, so a partially
// applied repair in one iteration cannot leak into the next.
type protoCase struct {
	name  string
	build func(t *testing.T) (srvFactory func() netproto.Handler, client netproto.Handler)
}

// liveSets builds a diverged (server, client) live-set pair maintaining
// Sync (and EMD when withEMD), for the cluster protocols.
func liveSets(t *testing.T, withEMD bool) (*live.Set, *live.Set) {
	t.Helper()
	space := metric.HammingCube(64)
	shared := workload.RandomSet(space, 20, rng.New(11))
	srvExtra := workload.RandomSet(space, 4, rng.New(12))
	cliExtra := workload.RandomSet(space, 3, rng.New(13))
	cfg := live.Config{Sync: &live.SyncConfig{Seed: 900}}
	if withEMD {
		p := emd.DefaultParams(space, 256, 4, 7)
		cfg.EMD = &p
	}
	srv, err := live.NewSet(cfg, append(shared.Clone(), srvExtra...))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := live.NewSet(cfg, append(shared.Clone(), cliExtra...))
	if err != nil {
		t.Fatal(err)
	}
	return srv, cli
}

func matrixCases() []protoCase {
	space := metric.HammingCube(64)
	emdP := emd.Params{Space: space, N: 16, K: 2, D1: 2, D2: 64, Seed: 3}
	gapSpace := metric.HammingCube(128)
	gapP := gap.Params{Space: gapSpace, N: 12, R1: 2, R2: 32, Seed: 4}
	ssP := setsets.Params{PayloadBytes: 8, Seed: 6}

	pts := func(space metric.Space, n int, seed uint64) metric.PointSet {
		return workload.RandomSet(space, n, rng.New(seed))
	}
	ids := func(seed uint64, n int, extra ...uint64) []uint64 {
		src := rng.New(seed)
		out := make([]uint64, n, n+len(extra))
		for i := range out {
			out[i] = src.Uint64()
		}
		return append(out, extra...)
	}
	kids := func(tags ...uint64) []setsets.Child {
		out := make([]setsets.Child, len(tags))
		for i, tag := range tags {
			p := make([]byte, 8)
			for j := range p {
				p[j] = byte(tag >> (8 * j))
			}
			out[i] = setsets.Child{Payload: p}
		}
		return out
	}

	return []protoCase{
		{"emd", func(t *testing.T) (func() netproto.Handler, netproto.Handler) {
			f, err := netproto.NewEMDSenderFactory(emdP, pts(space, 16, 21))
			if err != nil {
				t.Fatal(err)
			}
			return f, netproto.NewEMDReceiver(emdP, pts(space, 16, 22))
		}},
		{"gap", func(t *testing.T) (func() netproto.Handler, netproto.Handler) {
			return func() netproto.Handler { return netproto.NewGapSender(gapP, pts(gapSpace, 12, 23)) },
				netproto.NewGapReceiver(gapP, pts(gapSpace, 12, 24))
		}},
		{"sync", func(t *testing.T) (func() netproto.Handler, netproto.Handler) {
			p := netproto.SyncParams{Seed: 5}
			return func() netproto.Handler { return netproto.NewSyncResponder(p, ids(31, 50, 1, 2, 3)) },
				netproto.NewSyncInitiator(p, ids(31, 50, 7, 8))
		}},
		{"setsets", func(t *testing.T) (func() netproto.Handler, netproto.Handler) {
			return func() netproto.Handler { return netproto.NewSetSetsResponder(ssP, kids(1, 2, 3, 4)) },
				netproto.NewSetSetsInitiator(ssP, kids(1, 2, 5))
		}},
		{"live-emd", func(t *testing.T) (func() netproto.Handler, netproto.Handler) {
			srvLS, cliLS := liveSets(t, true)
			f, err := netproto.NewLiveEMDSenderFactory(srvLS)
			if err != nil {
				t.Fatal(err)
			}
			p, _ := cliLS.EMDParams()
			return f, netproto.NewLiveEMDReceiver(p, cliLS.Snapshot().Points, &netproto.EMDCache{})
		}},
		{"probe", func(t *testing.T) (func() netproto.Handler, netproto.Handler) {
			srvLS, cliLS := liveSets(t, false)
			return netproto.NewProbeResponderFactory(srvLS), netproto.NewProbeInitiator(cliLS)
		}},
		{"repair", func(t *testing.T) (func() netproto.Handler, netproto.Handler) {
			srvLS, cliLS := liveSets(t, false)
			f, err := netproto.NewRepairResponderFactory(srvLS)
			if err != nil {
				t.Fatal(err)
			}
			h, err := netproto.NewRepairInitiator(cliLS, 0)
			if err != nil {
				t.Fatal(err)
			}
			return f, h
		}},
	}
}

// runMatrixSession runs one client session against a one-shot server
// over net, returning the client error and the drained server.
func runMatrixSession(t *testing.T, net *simnet.Network, factory func() netproto.Handler, client netproto.Handler) (error, *session.Server) {
	t.Helper()
	srv := session.NewServer(session.Config{
		Transport:      net.Host("srv"),
		SessionTimeout: 20 * time.Second,
	})
	srv.Handle(factory)
	if _, err := srv.Listen("sim", "srv:1"); err != nil {
		t.Fatal(err)
	}
	d := session.Dialer{
		Network:        "sim",
		Addr:           "srv:1",
		Transport:      net.Host("cli"),
		DialTimeout:    5 * time.Second,
		SessionTimeout: 20 * time.Second,
	}
	_, err := d.Do(client)
	srv.Shutdown(5 * time.Second) //nolint:errcheck // sessions on a cut conn die promptly
	return err, srv
}

// cutOffsets derives the offsets to test from a clean run's chunk
// sizes: every frame boundary (0 = reset before the hello) plus the
// midpoint of every frame.
func cutOffsets(writes []int) []int64 {
	var total int64
	for _, w := range writes {
		total += int64(w)
	}
	seen := map[int64]bool{}
	var out []int64
	add := func(o int64) {
		if o >= 0 && o < total && !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	var cum int64
	add(0)
	for _, w := range writes {
		add(cum + int64(w)/2)
		cum += int64(w)
		add(cum)
	}
	return out
}

func TestMidStreamFailureMatrix(t *testing.T) {
	for _, pc := range matrixCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			t.Parallel()
			// Clean run: discover the frame boundaries for this protocol.
			cleanNet := simnet.New(1)
			factory, client := pc.build(t)
			if err, srv := runMatrixSession(t, cleanNet, factory, client); err != nil {
				t.Fatalf("clean session failed: %v", err)
			} else if srv.Served() != 1 || srv.Failed() != 0 {
				t.Fatalf("clean session: served=%d failed=%d", srv.Served(), srv.Failed())
			}
			conns := cleanNet.ConnWrites("cli", "srv")
			if len(conns) != 1 || len(conns[0]) < 2 {
				t.Fatalf("clean run recorded %d conns (chunks: %v)", len(conns), conns)
			}
			offsets := cutOffsets(conns[0])
			t.Logf("%s: %d frames, cutting at %v", pc.name, len(conns[0]), offsets)

			for _, off := range offsets {
				net := simnet.New(uint64(2 + off))
				net.DropAfter("cli", "srv", off)
				factory, client := pc.build(t)
				err, srv := runMatrixSession(t, net, factory, client)
				if err == nil {
					t.Fatalf("cut at offset %d: client session succeeded", off)
				}
				if srv.Served() != 0 {
					t.Fatalf("cut at offset %d: server recorded a successful session", off)
				}
				// At offset 0 not a single byte flows, so the server may
				// tear the connection down before ever starting a session;
				// any delivered prefix forces the server to engage (the
				// synchronous pipe means the client's write only completed
				// because the server was reading) and the session must be
				// surfaced as a failure.
				if off > 0 && srv.Failed() != 1 {
					t.Fatalf("cut at offset %d: server failed=%d, want the session surfaced as an error",
						off, srv.Failed())
				}
				// The server's background accept goroutine may still be
				// tearing down a connection the cut killed before any
				// session started; give it a bounded moment before calling
				// a remaining endpoint a leak.
				deadline := time.Now().Add(2 * time.Second)
				for net.OpenConns() != 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if open := net.OpenConns(); open != 0 {
					t.Fatalf("cut at offset %d: %d connection endpoints leaked", off, open)
				}

				// Canary: poison pooled encoders (their backing arrays are
				// the recycled buffers of the failed session) and require a
				// clean session to still succeed — the failed session must
				// have released, not retained, its pooled memory.
				release := scenario.PoisonPool(8, 2048)
				verifyNet := simnet.New(uint64(3 + off))
				factory, client = pc.build(t)
				if err, _ := runMatrixSession(t, verifyNet, factory, client); err != nil {
					t.Fatalf("cut at offset %d: clean session after poisoned pool failed: %v", off, err)
				}
				release()
			}
		})
	}
}

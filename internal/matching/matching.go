// Package matching provides exact minimum-cost bipartite matching (the
// Hungarian method of Kuhn [20], implemented as successive shortest
// augmenting paths with Johnson potentials) and, on top of it, the
// paper's two ground-truth quantities: earth mover's distance
// (Definition 3.2) and EMD_k (Definition 3.3), the minimum EMD achievable
// after excluding k points from each side.
//
// The successive-shortest-path formulation is chosen deliberately: after
// j augmentations the algorithm holds a minimum-cost matching of
// cardinality exactly j, so one run yields EMD_k for every k at once
// (PrefixCosts), which the evaluation harness uses heavily.
package matching

import (
	"fmt"
	"math"

	"repro/internal/metric"
)

// Assign solves the rectangular assignment problem for a cost matrix with
// n rows and m columns (entries must be non-negative and finite). It
// returns rowToCol (length n, −1 for rows left unmatched when n > m) and
// the total cost of the optimal maximum-cardinality matching.
func Assign(cost [][]float64) (rowToCol []int, total float64) {
	s := newSolver(cost)
	card := s.n
	if s.m < card {
		card = s.m
	}
	for j := 0; j < card; j++ {
		if !s.augment() {
			break
		}
	}
	return s.matchL, s.matchedCost()
}

// PrefixCosts returns a slice pc of length min(n,m)+1 where pc[j] is the
// cost of a minimum-cost matching of cardinality j. pc[0] = 0 and pc is
// non-decreasing and convex.
func PrefixCosts(cost [][]float64) []float64 {
	s := newSolver(cost)
	card := s.n
	if s.m < card {
		card = s.m
	}
	pc := make([]float64, 1, card+1)
	for j := 0; j < card; j++ {
		if !s.augment() {
			break
		}
		pc = append(pc, s.matchedCost())
	}
	return pc
}

// solver holds the successive-shortest-path state over the bipartite
// graph: left nodes 0..n−1, right nodes 0..m−1.
type solver struct {
	n, m   int
	cost   [][]float64
	matchL []int // left → right, −1 if unmatched
	matchR []int // right → left, −1 if unmatched
	piL    []float64
	piR    []float64
	// scratch for Dijkstra
	distL, distR []float64
	doneL, doneR []bool
	// parent pointers: parR[j] = left node reaching right j;
	// parL[i] = right node reaching left i (via matched edge).
	parR []int
}

func newSolver(cost [][]float64) *solver {
	n := len(cost)
	m := 0
	if n > 0 {
		m = len(cost[0])
	}
	for i, row := range cost {
		if len(row) != m {
			panic(fmt.Sprintf("matching: ragged cost matrix at row %d", i))
		}
		for j, c := range row {
			if c < 0 || math.IsInf(c, 0) || math.IsNaN(c) {
				panic(fmt.Sprintf("matching: cost[%d][%d] = %v must be finite and non-negative", i, j, c))
			}
		}
	}
	s := &solver{
		n: n, m: m, cost: cost,
		matchL: make([]int, n), matchR: make([]int, m),
		piL: make([]float64, n), piR: make([]float64, m),
		distL: make([]float64, n), distR: make([]float64, m),
		doneL: make([]bool, n), doneR: make([]bool, m),
		parR: make([]int, m),
	}
	for i := range s.matchL {
		s.matchL[i] = -1
	}
	for j := range s.matchR {
		s.matchR[j] = -1
	}
	return s
}

func (s *solver) matchedCost() float64 {
	var total float64
	for i, j := range s.matchL {
		if j >= 0 {
			total += s.cost[i][j]
		}
	}
	return total
}

// augment finds one shortest augmenting path from the set of unmatched
// left nodes to any unmatched right node under reduced costs, updates the
// potentials, and flips the path. It returns false when no augmenting
// path exists.
func (s *solver) augment() bool {
	const inf = math.MaxFloat64
	for i := range s.distL {
		s.distL[i] = inf
		s.doneL[i] = false
	}
	for j := range s.distR {
		s.distR[j] = inf
		s.doneR[j] = false
		s.parR[j] = -1
	}
	for i := 0; i < s.n; i++ {
		if s.matchL[i] == -1 {
			s.distL[i] = 0
		}
	}
	target := -1
	var targetDist float64
	for {
		// Dense Dijkstra step: pick the unsettled node (left or right)
		// with minimum tentative distance.
		best := inf
		bestIsLeft := false
		bestIdx := -1
		for i := 0; i < s.n; i++ {
			if !s.doneL[i] && s.distL[i] < best {
				best, bestIsLeft, bestIdx = s.distL[i], true, i
			}
		}
		for j := 0; j < s.m; j++ {
			if !s.doneR[j] && s.distR[j] < best {
				best, bestIsLeft, bestIdx = s.distR[j], false, j
			}
		}
		if bestIdx == -1 {
			return false // no augmenting path
		}
		if bestIsLeft {
			i := bestIdx
			s.doneL[i] = true
			// Relax forward edges i → all right j.
			base := s.distL[i] + s.piL[i]
			for j := 0; j < s.m; j++ {
				if s.doneR[j] {
					continue
				}
				rc := base + s.cost[i][j] - s.piR[j]
				if rc < s.distR[j] {
					s.distR[j] = rc
					s.parR[j] = i
				}
			}
		} else {
			j := bestIdx
			s.doneR[j] = true
			if s.matchR[j] == -1 {
				target, targetDist = j, s.distR[j]
				break
			}
			// Relax the residual (matched) edge j → matchR[j].
			i := s.matchR[j]
			rc := s.distR[j] + s.piR[j] - s.cost[i][j] - s.piL[i]
			if !s.doneL[i] && rc < s.distL[i] {
				s.distL[i] = rc
			}
		}
	}
	// Potential update keeps all reduced costs non-negative and makes
	// every edge on a shortest path tight.
	for i := 0; i < s.n; i++ {
		if s.distL[i] < targetDist {
			s.piL[i] += s.distL[i] - targetDist
		}
	}
	for j := 0; j < s.m; j++ {
		if s.distR[j] < targetDist {
			s.piR[j] += s.distR[j] - targetDist
		}
	}
	// Flip the augmenting path by walking parents from the target.
	j := target
	for j != -1 {
		i := s.parR[j]
		prev := s.matchL[i]
		s.matchL[i] = j
		s.matchR[j] = i
		j = prev
	}
	return true
}

// CostMatrix builds the pairwise distance matrix between X (rows) and Y
// (columns) under space s.
func CostMatrix(s metric.Space, x, y metric.PointSet) [][]float64 {
	m := make([][]float64, len(x))
	for i, p := range x {
		row := make([]float64, len(y))
		for j, q := range y {
			row[j] = s.Distance(p, q)
		}
		m[i] = row
	}
	return m
}

// EMD returns the earth mover's distance between equal-sized point sets
// (Definition 3.2): the cost of the minimum-cost perfect matching.
func EMD(s metric.Space, x, y metric.PointSet) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matching: EMD between sets of size %d and %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return 0
	}
	_, total := Assign(CostMatrix(s, x, y))
	return total
}

// EMDWithMatching returns the optimal bijection (as an index map from x
// to y) along with its cost.
func EMDWithMatching(s metric.Space, x, y metric.PointSet) ([]int, float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matching: EMD between sets of size %d and %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return nil, 0
	}
	return Assign(CostMatrix(s, x, y))
}

// EMDk returns EMD_k(X, Y) (Definition 3.3): the minimum-cost matching of
// cardinality |X|−k, i.e. the EMD after the adversarially best exclusion
// of k points from each side. k must lie in [0, |X|].
func EMDk(s metric.Space, x, y metric.PointSet, k int) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matching: EMDk between sets of size %d and %d", len(x), len(y)))
	}
	if k < 0 || k > len(x) {
		panic(fmt.Sprintf("matching: EMDk with k=%d, n=%d", k, len(x)))
	}
	if len(x)-k == 0 {
		return 0
	}
	pc := PrefixCosts(CostMatrix(s, x, y))
	return pc[len(x)-k]
}

// EMDkAll returns EMD_k for all k = 0..n in one solve; EMDkAll(...)[k] ==
// EMDk(..., k). The harness uses this when sweeping k.
func EMDkAll(s metric.Space, x, y metric.PointSet) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matching: EMDkAll between sets of size %d and %d", len(x), len(y)))
	}
	n := len(x)
	out := make([]float64, n+1)
	if n == 0 {
		return out
	}
	pc := PrefixCosts(CostMatrix(s, x, y))
	for k := 0; k <= n; k++ {
		j := n - k
		if j < len(pc) {
			out[k] = pc[j]
		} else {
			out[k] = math.Inf(1) // unreachable cardinality (cannot happen for square matrices)
		}
	}
	return out
}

// GreedyMatch returns a maximal greedy matching from x into y: each point
// of x is matched to its nearest currently unmatched point of y. It is
// not optimal; it serves as a fast baseline and as a sanity upper bound
// in tests (greedy cost ≥ optimal cost).
func GreedyMatch(s metric.Space, x, y metric.PointSet) ([]int, float64) {
	used := make([]bool, len(y))
	out := make([]int, len(x))
	var total float64
	for i, p := range x {
		best, arg := math.Inf(1), -1
		for j, q := range y {
			if used[j] {
				continue
			}
			if d := s.Distance(p, q); d < best {
				best, arg = d, j
			}
		}
		out[i] = arg
		if arg >= 0 {
			used[arg] = true
			total += best
		}
	}
	return out, total
}

package matching

import (
	"math"
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
)

// bruteAssign enumerates all injections of rows into columns of the given
// cardinality and returns the minimum total cost. Exponential; for tests
// on tiny instances only.
func bruteAssign(cost [][]float64, card int) float64 {
	n := len(cost)
	m := 0
	if n > 0 {
		m = len(cost[0])
	}
	best := math.Inf(1)
	usedCol := make([]bool, m)
	var rec func(row, placed int, acc float64)
	rec = func(row, placed int, acc float64) {
		if placed == card {
			if acc < best {
				best = acc
			}
			return
		}
		if row == n || n-row < card-placed {
			return
		}
		rec(row+1, placed, acc) // skip this row
		for j := 0; j < m; j++ {
			if !usedCol[j] {
				usedCol[j] = true
				rec(row+1, placed+1, acc+cost[row][j])
				usedCol[j] = false
			}
		}
	}
	rec(0, 0, 0)
	return best
}

func randMatrix(src *rng.Source, n, m int) [][]float64 {
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, m)
		for j := range c[i] {
			c[i][j] = float64(src.Intn(100))
		}
	}
	return c
}

func TestAssignMatchesBruteForceSquare(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 60; trial++ {
		n := src.Intn(6) + 1
		cost := randMatrix(src, n, n)
		_, got := Assign(cost)
		want := bruteAssign(cost, n)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d): Assign = %v, brute = %v, cost=%v", trial, n, got, want, cost)
		}
	}
}

func TestAssignMatchesBruteForceRectangular(t *testing.T) {
	src := rng.New(2)
	for trial := 0; trial < 60; trial++ {
		n := src.Intn(5) + 1
		m := src.Intn(5) + 1
		cost := randMatrix(src, n, m)
		card := n
		if m < card {
			card = m
		}
		rows, got := Assign(cost)
		want := bruteAssign(cost, card)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (%dx%d): Assign = %v, brute = %v", trial, n, m, got, want)
		}
		// Validity of the returned assignment.
		matched := 0
		seen := make(map[int]bool)
		for i, j := range rows {
			if j == -1 {
				continue
			}
			if j < 0 || j >= m || seen[j] {
				t.Fatalf("invalid assignment row %d -> %d", i, j)
			}
			seen[j] = true
			matched++
		}
		if matched != card {
			t.Fatalf("matched %d, want %d", matched, card)
		}
	}
}

func TestPrefixCostsMatchBruteForce(t *testing.T) {
	src := rng.New(3)
	for trial := 0; trial < 40; trial++ {
		n := src.Intn(5) + 1
		m := src.Intn(5) + 1
		cost := randMatrix(src, n, m)
		pc := PrefixCosts(cost)
		card := n
		if m < card {
			card = m
		}
		if len(pc) != card+1 {
			t.Fatalf("PrefixCosts length %d, want %d", len(pc), card+1)
		}
		for j := 0; j <= card; j++ {
			want := bruteAssign(cost, j)
			if math.Abs(pc[j]-want) > 1e-9 {
				t.Fatalf("trial %d: pc[%d] = %v, brute = %v", trial, j, pc[j], want)
			}
		}
	}
}

func TestPrefixCostsConvex(t *testing.T) {
	src := rng.New(4)
	cost := randMatrix(src, 12, 12)
	pc := PrefixCosts(cost)
	for j := 2; j < len(pc); j++ {
		d1 := pc[j-1] - pc[j-2]
		d2 := pc[j] - pc[j-1]
		if d2 < d1-1e-9 {
			t.Fatalf("prefix costs not convex at %d: %v then %v", j, d1, d2)
		}
	}
}

func TestAssignPanicsOnBadInput(t *testing.T) {
	assertPanics(t, "ragged", func() { Assign([][]float64{{1, 2}, {3}}) })
	assertPanics(t, "negative", func() { Assign([][]float64{{-1}}) })
	assertPanics(t, "nan", func() { Assign([][]float64{{math.NaN()}}) })
}

func TestAssignEmpty(t *testing.T) {
	rows, total := Assign(nil)
	if len(rows) != 0 || total != 0 {
		t.Errorf("empty assign = %v, %v", rows, total)
	}
}

func TestEMDBasics(t *testing.T) {
	s := metric.Grid(100, 1, metric.L1)
	x := metric.PointSet{{10}, {20}, {30}}
	y := metric.PointSet{{12}, {19}, {33}}
	// Optimal matching is the order-preserving one: 2 + 1 + 3 = 6.
	if got := EMD(s, x, y); got != 6 {
		t.Errorf("EMD = %v, want 6", got)
	}
	if got := EMD(s, x, x); got != 0 {
		t.Errorf("EMD(x,x) = %v", got)
	}
	if got := EMD(s, nil, nil); got != 0 {
		t.Errorf("EMD(∅,∅) = %v", got)
	}
}

func TestEMDSymmetric(t *testing.T) {
	s := metric.Grid(1000, 3, metric.L2)
	src := rng.New(5)
	mk := func() metric.PointSet {
		ps := make(metric.PointSet, 8)
		for i := range ps {
			ps[i] = metric.Point{int32(src.Intn(1000)), int32(src.Intn(1000)), int32(src.Intn(1000))}
		}
		return ps
	}
	for trial := 0; trial < 10; trial++ {
		x, y := mk(), mk()
		if d1, d2 := EMD(s, x, y), EMD(s, y, x); math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("EMD asymmetric: %v vs %v", d1, d2)
		}
	}
}

func TestEMDTriangleInequality(t *testing.T) {
	s := metric.Grid(1000, 2, metric.L1)
	src := rng.New(6)
	mk := func() metric.PointSet {
		ps := make(metric.PointSet, 6)
		for i := range ps {
			ps[i] = metric.Point{int32(src.Intn(1000)), int32(src.Intn(1000))}
		}
		return ps
	}
	for trial := 0; trial < 20; trial++ {
		x, y, z := mk(), mk(), mk()
		if EMD(s, x, z) > EMD(s, x, y)+EMD(s, y, z)+1e-9 {
			t.Fatal("EMD violates triangle inequality")
		}
	}
}

func TestEMDkDefinition(t *testing.T) {
	s := metric.Grid(1000, 1, metric.L1)
	// Three near-identical pairs plus one gross outlier pair: EMD is
	// dominated by the outlier, EMD_1 excludes it. On a line the optimal
	// perfect matching is the sorted-order one:
	// 10→0, 20→11, 30→21, 1000→31 = 10+9+9+969 = 997.
	x := metric.PointSet{{10}, {20}, {30}, {1000}}
	y := metric.PointSet{{11}, {21}, {31}, {0}}
	if got := EMD(s, x, y); got != 997 {
		t.Errorf("EMD = %v, want 997", got)
	}
	if got := EMDk(s, x, y, 1); got != 3 {
		t.Errorf("EMD_1 = %v, want 3", got)
	}
	if got := EMDk(s, x, y, 4); got != 0 {
		t.Errorf("EMD_4 = %v, want 0", got)
	}
	if got := EMDk(s, x, y, 0); got != 997 {
		t.Errorf("EMD_0 = %v, want 997", got)
	}
}

func TestEMDkAllConsistent(t *testing.T) {
	s := metric.Grid(500, 2, metric.L2)
	src := rng.New(7)
	n := 9
	x := make(metric.PointSet, n)
	y := make(metric.PointSet, n)
	for i := 0; i < n; i++ {
		x[i] = metric.Point{int32(src.Intn(500)), int32(src.Intn(500))}
		y[i] = metric.Point{int32(src.Intn(500)), int32(src.Intn(500))}
	}
	all := EMDkAll(s, x, y)
	if len(all) != n+1 {
		t.Fatalf("EMDkAll length %d", len(all))
	}
	for k := 0; k <= n; k++ {
		if single := EMDk(s, x, y, k); math.Abs(all[k]-single) > 1e-9 {
			t.Errorf("k=%d: all=%v single=%v", k, all[k], single)
		}
	}
	// Monotone non-increasing in k.
	for k := 1; k <= n; k++ {
		if all[k] > all[k-1]+1e-9 {
			t.Errorf("EMD_k not monotone at k=%d", k)
		}
	}
}

func TestEMDPanics(t *testing.T) {
	s := metric.Grid(10, 1, metric.L1)
	assertPanics(t, "size mismatch", func() { EMD(s, metric.PointSet{{1}}, nil) })
	assertPanics(t, "EMDk bad k", func() { EMDk(s, metric.PointSet{{1}}, metric.PointSet{{2}}, 2) })
	assertPanics(t, "EMDk negative k", func() { EMDk(s, metric.PointSet{{1}}, metric.PointSet{{2}}, -1) })
}

func TestGreedyUpperBoundsOptimal(t *testing.T) {
	s := metric.Grid(1000, 2, metric.L1)
	src := rng.New(8)
	for trial := 0; trial < 20; trial++ {
		n := src.Intn(10) + 2
		x := make(metric.PointSet, n)
		y := make(metric.PointSet, n)
		for i := 0; i < n; i++ {
			x[i] = metric.Point{int32(src.Intn(1000)), int32(src.Intn(1000))}
			y[i] = metric.Point{int32(src.Intn(1000)), int32(src.Intn(1000))}
		}
		_, greedy := GreedyMatch(s, x, y)
		opt := EMD(s, x, y)
		if greedy < opt-1e-9 {
			t.Fatalf("greedy %v beat optimal %v", greedy, opt)
		}
	}
}

func TestEMDWithMatchingIsBijection(t *testing.T) {
	s := metric.Grid(100, 1, metric.L1)
	x := metric.PointSet{{1}, {2}, {3}, {4}}
	y := metric.PointSet{{4}, {3}, {2}, {1}}
	m, total := EMDWithMatching(s, x, y)
	if total != 0 {
		t.Errorf("total = %v, want 0 (sets are equal as multisets)", total)
	}
	seen := map[int]bool{}
	for _, j := range m {
		if j < 0 || seen[j] {
			t.Fatalf("not a bijection: %v", m)
		}
		seen[j] = true
	}
}

func BenchmarkAssign64(b *testing.B) {
	src := rng.New(9)
	cost := randMatrix(src, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Assign(cost)
	}
}

func BenchmarkAssign256(b *testing.B) {
	src := rng.New(10)
	cost := randMatrix(src, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Assign(cost)
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

// Package robustsync is a Go implementation of robust set reconciliation
// via locality sensitive hashing, reproducing Mitzenmacher & Morgan
// (PODS 2019, arXiv:1807.09694).
//
// Two parties, Alice and Bob, hold sets of points in a discretized metric
// space ([∆]^d under Hamming, ℓ1 or ℓ2). Points that are close should be
// treated as equal — sensor noise, float rounding, lossy compression —
// and the goal is for Bob to end up with a set close to Alice's while
// communicating far less than the sets' size. The package exposes the
// paper's two models:
//
//   - Earth Mover's Distance model (Algorithm 1): Bob computes S′B of the
//     same cardinality with EMD(SA, S′B) ≤ O(log n)·EMD_k(SA, SB) using
//     Õ(k) communication in a single message. See ReconcileEMD and
//     ReconcileEMDScaled.
//
//   - Gap Guarantee model (Theorem 4.2): given radii r1 < r2, Bob ends
//     with SB ∪ TA such that every point of SA has a neighbor within r2,
//     in 4 rounds of (k + ρn)·polylog(n) + k·log|U| communication. See
//     ReconcileGap and ReconcileGapOneSided.
//
// Classic exact set reconciliation (IBLT-based, the substrate both
// protocols build on) is exposed as SyncIDs for applications like
// transaction relay.
//
// Everything runs on explicit shared seeds (the paper's public coins):
// two processes that construct the same Params produce bit-identical
// protocol messages, so the in-process helpers here translate directly
// to a networked deployment.
package robustsync

import (
	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/iblt"
	"repro/internal/metric"
	"repro/internal/quadtree"
)

// Point is a point of [∆]^d: integer coordinates in [0, ∆].
type Point = metric.Point

// PointSet is a multiset of points.
type PointSet = metric.PointSet

// Space describes the metric space ([∆]^d, f).
type Space = metric.Space

// Norm selects the distance function.
type Norm = metric.Norm

// Supported norms.
const (
	Hamming = metric.Hamming
	L1      = metric.L1
	L2      = metric.L2
)

// HammingSpace returns ({0,1}^d, Hamming distance).
func HammingSpace(d int) Space { return metric.HammingCube(d) }

// GridSpace returns ([∆]^d, norm).
func GridSpace(delta int32, d int, norm Norm) Space { return metric.Grid(delta, d, norm) }

// EMDParams configures the Earth Mover's Distance protocol; see
// emd.Params for field documentation.
type EMDParams = emd.Params

// EMDResult reports an EMD protocol run.
type EMDResult = emd.Result

// EMDScaledResult reports an interval-scaled run (Corollary 3.6).
type EMDScaledResult = emd.ScaledResult

// DefaultEMDParams returns the no-prior-knowledge parameterization of §3.
func DefaultEMDParams(space Space, n, k int, seed uint64) EMDParams {
	return emd.DefaultParams(space, n, k, seed)
}

// ReconcileEMD runs Algorithm 1: one message from Alice lets Bob compute
// S′B with EMD(SA, S′B) ≤ O(log n)·EMD_k(SA, SB) with constant
// probability (Theorem 3.4). Both point sets must have size p.N.
func ReconcileEMD(p EMDParams, sa, sb PointSet) (EMDResult, error) {
	return emd.Reconcile(p, sa, sb)
}

// ReconcileEMDScaled runs the Corollary 3.6 interval-scaling strategy,
// which needs no prior knowledge of EMD_k and keeps per-interval hashing
// cheap.
func ReconcileEMDScaled(p EMDParams, sa, sb PointSet) (EMDScaledResult, error) {
	return emd.ReconcileScaled(p, sa, sb)
}

// GapParams configures the Gap Guarantee protocol; see gap.Params.
type GapParams = gap.Params

// GapResult reports a Gap Guarantee run.
type GapResult = gap.Result

// ReconcileGap runs the 4-round Theorem 4.2 protocol: Bob receives every
// point of Alice's that is ≥ r2 from all of his (and possibly a few
// extras), guaranteeing r2-coverage of SA ∪ SB by S′B.
func ReconcileGap(p GapParams, sa, sb PointSet) (GapResult, error) {
	return gap.Reconcile(p, sa, sb)
}

// ReconcileGapOneSided runs the Theorem 4.5 low-dimension variant for
// ([∆]^d, ℓp); pExp is the norm exponent. Requires r2 > r1·d.
func ReconcileGapOneSided(p GapParams, pExp float64, sa, sb PointSet) (GapResult, error) {
	return gap.ReconcileOneSided(p, pExp, sa, sb)
}

// QuadtreeParams configures the Chen et al. [7] baseline protocol.
type QuadtreeParams = quadtree.Params

// ReconcileQuadtree runs the randomly-offset quadtree baseline (an O(d)
// approximation), provided for comparison.
func ReconcileQuadtree(p QuadtreeParams, sa, sb PointSet) (quadtree.Result, error) {
	return quadtree.Reconcile(p, sa, sb)
}

// SyncIDs performs classic exact set reconciliation over 64-bit
// identifiers (§2.2's IBLT protocol): given Bob's and Alice's ID sets and
// a bound on their difference, it returns the IDs only Bob has and the
// IDs only Alice has, retrying with doubled capacity on the (rare)
// peeling failure.
func SyncIDs(bob, alice []uint64, diffBound int, seed uint64) (onlyBob, onlyAlice []uint64, err error) {
	return iblt.DiffAdaptive(bob, alice, diffBound, 3, seed, 6)
}

// EstimateDiff estimates |bob △ alice| without prior context using strata
// estimators ([10]), the standard way to choose SyncIDs' diffBound.
func EstimateDiff(bob, alice []uint64, seed uint64) (int, error) {
	sb := iblt.NewStrata(80, seed)
	for _, k := range bob {
		sb.Insert(k)
	}
	sa := iblt.NewStrata(80, seed)
	for _, k := range alice {
		sa.Insert(k)
	}
	return sb.Estimate(sa)
}

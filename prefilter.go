package robustsync

import (
	"repro/internal/dsbf"
	"repro/internal/lsh"
)

// Distance-sensitive membership pre-filtering (Kirsch & Mitzenmacher,
// the paper's reference [18]): a compact sketch a party can publish so
// peers can ask "is this point approximately present?" before spending a
// reconciliation round.

// PrefilterParams configures a distance-sensitive Bloom filter.
type PrefilterParams = dsbf.Params

// Prefilter is a built filter.
type Prefilter = dsbf.Filter

// NewPrefilter builds a distance-sensitive Bloom filter over a point set
// using the standard LSH family for the space's norm: queries within r1
// of a stored point are accepted whp, queries beyond r2 of all stored
// points are rejected whp.
func NewPrefilter(space Space, set PointSet, r1, r2 float64, seed uint64) (*Prefilter, error) {
	p := dsbf.Params{Space: space, Seed: seed}
	switch space.Norm {
	case Hamming:
		p.LSH = lsh.HammingParams(space, r1, r2)
		p.Family = lsh.NewCoordSampling(space, float64(space.Dim))
	default:
		// Grid LSH covers both ℓ1 and (conservatively, via norm
		// monotonicity ‖·‖2 ≤ ‖·‖1) ℓ2 point sets.
		w := r2 / 0.6931471805599453 // r2/ln 2 pins p2 near 1/2
		p.LSH = lsh.GridL1Params(space, r1, r2, w)
		p.Family = lsh.NewGridL1(space, w)
	}
	return dsbf.Build(p, set)
}

package robustsync

import (
	"fmt"

	"repro/internal/gap"
	"repro/internal/metric"
)

// Two-way reconciliation. The paper's models are one-way (§1: "the
// one-way variation is more natural" for robust reconciliation), and it
// notes that "we can easily achieve a natural version of two-way
// reconciliation by having both Alice and Bob run the protocol once in
// each direction; however, they will generally not end with the same
// point set." These wrappers implement exactly that composition.

// TwoWayGapResult reports both directions of a two-way gap
// reconciliation.
type TwoWayGapResult struct {
	// APrime is Alice's final set (SA ∪ TB); BPrime is Bob's (SB ∪ TA).
	APrime, BPrime PointSet
	// AtoB and BtoA are the per-direction results.
	AtoB, BtoA GapResult
}

// ReconcileGapTwoWay runs the Gap Guarantee protocol in both directions
// with independent derived seeds. Afterwards every point of SA ∪ SB is
// within R2 of both parties' final sets (each direction's Definition 4.1
// guarantee, applied symmetrically). The sets are generally not equal —
// the paper is explicit that two-way robust reconciliation does not
// converge to a common set.
func ReconcileGapTwoWay(p GapParams, sa, sb PointSet) (TwoWayGapResult, error) {
	atob, err := gap.Reconcile(p, sa, sb)
	if err != nil {
		return TwoWayGapResult{}, fmt.Errorf("robustsync: a→b direction: %w", err)
	}
	back := p
	back.Seed = p.Seed ^ 0xb1d12ec7
	btoa, err := gap.Reconcile(back, sb, sa)
	if err != nil {
		return TwoWayGapResult{}, fmt.Errorf("robustsync: b→a direction: %w", err)
	}
	return TwoWayGapResult{
		APrime: btoa.SPrime,
		BPrime: atob.SPrime,
		AtoB:   atob,
		BtoA:   btoa,
	}, nil
}

// TwoWayEMDResult reports both directions of a two-way EMD
// reconciliation.
type TwoWayEMDResult struct {
	// APrime approximates SB from Alice's side; BPrime approximates SA
	// from Bob's side.
	APrime, BPrime PointSet
	AtoB, BtoA     EMDScaledResult
}

// ReconcileEMDTwoWay runs the scaled EMD protocol once in each
// direction. Either direction may independently report failure
// (Theorem 3.4's ≤ 1/8); callers should check both embedded results.
func ReconcileEMDTwoWay(p EMDParams, sa, sb PointSet) (TwoWayEMDResult, error) {
	atob, err := ReconcileEMDScaled(p, sa, sb)
	if err != nil {
		return TwoWayEMDResult{}, fmt.Errorf("robustsync: a→b direction: %w", err)
	}
	back := p
	back.Seed = p.Seed ^ 0x2a2a
	btoa, err := ReconcileEMDScaled(back, sb, sa)
	if err != nil {
		return TwoWayEMDResult{}, fmt.Errorf("robustsync: b→a direction: %w", err)
	}
	var aPrime, bPrime metric.PointSet
	if !btoa.Failed {
		aPrime = btoa.SPrime
	}
	if !atob.Failed {
		bPrime = atob.SPrime
	}
	return TwoWayEMDResult{APrime: aPrime, BPrime: bPrime, AtoB: atob, BtoA: btoa}, nil
}

// Command benchjson converts `go test -bench` output into a stable
// JSON artifact and gates CI on benchmark regressions.
//
// Convert mode (default): parse benchmark lines from -in (or stdin)
// and write a JSON array of {name, iterations, metrics} to -out (or
// stdout). Benchmark name suffixes like -8 (GOMAXPROCS) are stripped so
// artifacts diff cleanly across machines.
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson -out BENCH_PR2.json
//
// Check mode: compare a current artifact against a checked-in baseline
// and exit nonzero when the geometric mean of a metric over the
// benchmarks matching -pattern regressed more than -max-regress.
//
//	benchjson -check -baseline BENCH_baseline.json -current BENCH_PR2.json \
//	    -pattern BenchmarkServerThroughput -metric ns/op -max-regress 0.25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark result: the metric name → value pairs go test
// reported (ns/op, B/op, allocs/op, and any ReportMetric extras). Names
// are qualified with their package path ("repro/internal/iblt.BenchmarkInsert"):
// several packages legitimately define a benchmark of the same base name,
// and an unqualified artifact would pair the wrong entries in check mode.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchLine matches "BenchmarkFoo/sub-8   	 5	 123.4 ns/op	...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// pkgLine matches the "pkg: repro/internal/iblt" header go test emits
// before each package's benchmarks.
var pkgLine = regexp.MustCompile(`^pkg:\s+(\S+)$`)

func parse(r io.Reader) ([]Bench, error) {
	var out []Bench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if pm := pkgLine.FindStringSubmatch(line); pm != nil {
			pkg = pm[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			continue
		}
		metrics := make(map[string]float64, len(fields)/2)
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) == 0 {
			continue
		}
		name := m[1]
		if pkg != "" {
			name = pkg + "." + name
		}
		out = append(out, Bench{Name: name, Iterations: iters, Metrics: metrics})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func load(path string) ([]Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Bench
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// geomean returns the geometric mean of metric over the benches whose
// name contains pattern, and how many matched.
func geomean(bs []Bench, pattern, metric string) (float64, int) {
	sum, n := 0.0, 0
	for _, b := range bs {
		if !strings.Contains(b.Name, pattern) {
			continue
		}
		v, ok := b.Metrics[metric]
		if !ok || v <= 0 {
			continue
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return math.Exp(sum / float64(n)), n
}

func check(baselinePath, currentPath, pattern, metric string, maxRegress float64) error {
	baseline, err := load(baselinePath)
	if err != nil {
		return err
	}
	current, err := load(currentPath)
	if err != nil {
		return err
	}
	base, nb := geomean(baseline, pattern, metric)
	cur, nc := geomean(current, pattern, metric)
	if nb == 0 {
		return fmt.Errorf("baseline has no %q benchmarks with metric %q", pattern, metric)
	}
	if nc == 0 {
		return fmt.Errorf("current run has no %q benchmarks with metric %q — benchmark removed?", pattern, metric)
	}
	ratio := cur / base
	fmt.Printf("benchjson: %s %s geomean baseline=%.0f (%d benches) current=%.0f (%d benches) ratio=%.3f (limit %.3f)\n",
		pattern, metric, base, nb, cur, nc, ratio, 1+maxRegress)
	if ratio > 1+maxRegress {
		return fmt.Errorf("%s %s regressed %.1f%% (limit %.0f%%)",
			pattern, metric, (ratio-1)*100, maxRegress*100)
	}
	return nil
}

func main() {
	in := flag.String("in", "", "benchmark text input (default stdin)")
	out := flag.String("out", "", "JSON output path (default stdout)")
	doCheck := flag.Bool("check", false, "compare -current against -baseline instead of converting")
	baseline := flag.String("baseline", "", "baseline JSON artifact (check mode)")
	current := flag.String("current", "", "current JSON artifact (check mode)")
	pattern := flag.String("pattern", "BenchmarkServerThroughput", "benchmark name substring to gate on (check mode)")
	metric := flag.String("metric", "ns/op", "metric to gate on (check mode)")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum allowed fractional regression (check mode)")
	flag.Parse()

	if *doCheck {
		if *baseline == "" || *current == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -check needs -baseline and -current")
			os.Exit(2)
		}
		if err := check(*baseline, *current, *pattern, *metric, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	benches, err := parse(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(benches, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data) //nolint:errcheck
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(benches), *out)
}

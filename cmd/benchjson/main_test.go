package main

import (
	"strings"
	"testing"
)

// TestParseQualifiesNamesWithPackage reproduces the baseline-artifact
// name collision: two packages each define BenchmarkInsert, and an
// unqualified artifact carried two indistinguishable entries. Parsing
// the pkg: headers must yield distinct, package-qualified names.
func TestParseQualifiesNamesWithPackage(t *testing.T) {
	const out = `
goos: linux
pkg: repro/internal/dsbf
BenchmarkInsert-8   	 1000000	       755 ns/op
BenchmarkQuery-8    	  300000	      5381 ns/op
pkg: repro/internal/lsh
BenchmarkInsert-8   	   50000	     33821 ns/op
pkg: repro
BenchmarkServerThroughput/peers=16-8 	 5	 41619682 ns/op	 36.39 MB/s	 17093 allocs/op
PASS
`
	bs, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool, len(bs))
	for _, b := range bs {
		if names[b.Name] {
			t.Fatalf("duplicate benchmark name %q in parsed artifact", b.Name)
		}
		names[b.Name] = true
	}
	for _, want := range []string{
		"repro/internal/dsbf.BenchmarkInsert",
		"repro/internal/lsh.BenchmarkInsert",
		"repro.BenchmarkServerThroughput/peers=16",
	} {
		if !names[want] {
			t.Errorf("missing %q; got %v", want, names)
		}
	}
	// The gate's substring matching still finds the throughput bench.
	if g, n := geomean(bs, "BenchmarkServerThroughput", "allocs/op"); n != 1 || g < 17092 || g > 17094 {
		t.Errorf("geomean over qualified names = %v (%d benches), want ~17093 (1)", g, n)
	}
}

// TestParseWithoutPkgHeader keeps bare streams (a single package piped
// directly) working unqualified.
func TestParseWithoutPkgHeader(t *testing.T) {
	bs, err := parse(strings.NewReader("BenchmarkX 	 10	 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 || bs[0].Name != "BenchmarkX" {
		t.Fatalf("parsed %+v", bs)
	}
}

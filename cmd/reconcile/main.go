// Command reconcile demonstrates both robust-reconciliation protocols on
// a synthetic two-party scenario and reports quality and exact
// communication, next to the naive transmit-everything baseline.
//
// Usage:
//
//	reconcile -model emd  -norm hamming -d 128 -n 64 -k 4 -noise 2
//	reconcile -model gap  -norm hamming -d 1024 -n 64 -k 4 -r1 8 -r2 256
//	reconcile -model gap1 -norm l2 -d 2 -delta 1048575 -n 48 -k 3 -r1 50 -r2 30000
//
// Models: emd (Algorithm 1 with interval scaling), gap (Theorem 4.2),
// gap1 (Theorem 4.5 one-sided variant).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/matching"
	"repro/internal/metric"
	"repro/internal/workload"
)

func main() {
	model := flag.String("model", "emd", "emd | gap | gap1")
	normName := flag.String("norm", "hamming", "hamming | l1 | l2")
	d := flag.Int("d", 128, "dimension")
	delta := flag.Int("delta", 1, "max coordinate value ∆ (1 for binary)")
	n := flag.Int("n", 64, "points per party")
	k := flag.Int("k", 4, "outlier budget")
	noise := flag.Float64("noise", 2, "per-point noise radius (emd model)")
	r1 := flag.Float64("r1", 8, "close radius (gap models)")
	r2 := flag.Float64("r2", 0, "far radius (gap models; default d/4 for hamming)")
	seed := flag.Uint64("seed", 1, "shared public-coin seed")
	flag.Parse()

	var norm metric.Norm
	switch *normName {
	case "hamming":
		norm = metric.Hamming
	case "l1":
		norm = metric.L1
	case "l2":
		norm = metric.L2
	default:
		fail("unknown norm %q", *normName)
	}
	space := metric.Grid(int32(*delta), *d, norm)
	if err := space.Validate(); err != nil {
		fail("bad space: %v", err)
	}

	switch *model {
	case "emd":
		runEMD(space, *n, *k, *noise, *seed)
	case "gap", "gap1":
		rr2 := *r2
		if rr2 == 0 {
			rr2 = float64(*d) / 4
		}
		runGap(space, *n, *k, *r1, rr2, *seed, *model == "gap1")
	default:
		fail("unknown model %q", *model)
	}
}

func runEMD(space metric.Space, n, k int, noise float64, seed uint64) {
	inst := workload.NewEMDInstance(space, n, k, noise, seed)
	emdK := matching.EMDk(space, inst.SA, inst.SB, k)
	before := matching.EMD(space, inst.SA, inst.SB)

	p := emd.DefaultParams(space, n, k, seed+1)
	res, err := emd.ReconcileScaled(p, inst.SA, inst.SB)
	if err != nil {
		fail("emd: %v", err)
	}
	fmt.Printf("EMD model on %s, n=%d k=%d noise=%g\n", space, n, k, noise)
	fmt.Printf("  EMD(SA,SB) before:        %.1f\n", before)
	fmt.Printf("  EMD_k(SA,SB) (optimum):   %.1f\n", emdK)
	if res.Failed {
		fmt.Println("  protocol reported failure (Theorem 3.4 allows prob <= 1/8)")
		return
	}
	after := matching.EMD(space, inst.SA, res.SPrime)
	fmt.Printf("  EMD(SA,S'B) after:        %.1f  (ratio to EMD_k: %.2f)\n",
		after, after/maxf(emdK, 1))
	fmt.Printf("  decoded level i* = %d of %d; |XA| = %d\n", res.Level, res.Levels, len(res.XA))
	fmt.Printf("  communication: %s (naive: %d bits)\n", res.Stats, emd.NaiveBits(space, n))
}

func runGap(space metric.Space, n, k int, r1, r2 float64, seed uint64, oneSided bool) {
	inst, err := workload.NewGapInstance(space, n, k, 1, r1, r2, seed)
	if err != nil {
		fail("instance: %v", err)
	}
	p := gap.Params{Space: space, N: n + k, R1: r1, R2: r2, Seed: seed + 1}
	var res gap.Result
	if oneSided {
		pExp := 1.0
		if space.Norm == metric.L2 {
			pExp = 2.0
		}
		res, err = gap.ReconcileOneSided(p, pExp, inst.SA, inst.SB)
	} else {
		res, err = gap.Reconcile(p, inst.SA, inst.SB)
	}
	if err != nil {
		fail("gap: %v", err)
	}
	uncovered := 0
	for _, a := range inst.SA {
		if d, _ := res.SPrime.MinDistanceTo(space, a); d > r2 {
			uncovered++
		}
	}
	name := "Gap Guarantee (Thm 4.2)"
	if oneSided {
		name = "Gap Guarantee one-sided (Thm 4.5)"
	}
	fmt.Printf("%s on %s, n=%d k=%d r1=%g r2=%g\n", name, space, n, k, r1, r2)
	fmt.Printf("  planted far points: %d, transferred elements: %d\n", len(inst.Far), len(res.TA))
	fmt.Printf("  uncovered points of SA (must be 0): %d\n", uncovered)
	fmt.Printf("  key length h=%d, threshold=%d, rho=%.4f\n", res.H, res.Threshold, res.Rho)
	fmt.Printf("  communication: %s (naive: %d bits)\n", res.Stats, gap.NaiveBits(space, n))
	if uncovered > 0 {
		os.Exit(1)
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "reconcile: "+format+"\n", args...)
	os.Exit(2)
}

// Command reconciled is the reconciliation daemon: it serves the
// paper's protocols (EMD, Gap, exact ID sync, multiset-of-sets) to many
// concurrent peers over TCP or unix sockets through the session engine,
// and doubles as the matching client.
//
// Server and client derive their synthetic two-party workload — and,
// critically, their protocol Params — from the same flags, standing in
// for two deployments that share configuration out of band. The session
// header's parameter digest enforces the agreement on every connection.
//
// Usage:
//
//	reconciled -listen :7444                      # serve all protocols
//	reconciled -listen unix:/tmp/reconciled.sock  # same, unix socket
//	reconciled -connect :7444 -proto emd          # one client session
//	reconciled -connect :7444 -proto gap
//	reconciled -demo 12                           # in-process server + 12
//	                                              # concurrent mixed clients
//
// With -mutate M the server's sets become live sets (robustsync
// epoch-tagged mutable state): the EMD sketch, Gap key payloads and
// exact-ID fingerprints are maintained incrementally under churn, and
// EMD is served over the live-emd protocol so returning peers that
// announce their last synced epoch receive only the churned cells.
//
//	reconciled -listen :7444 -mutate 10           # churn 10 point
//	                                              # replacements per second
//	reconciled -connect :7444 -proto live-emd -mutate 1  # two sessions on
//	                                              # one cache: full, delta
//	reconciled -demo 12 -mutate 50                # wave of peers, 50
//	                                              # mutations, second wave
//	                                              # takes the delta path
//
// With -cluster the daemon becomes an anti-entropy mesh member: a
// multi-tenant store of named sets (-sets), served under RSYN v2
// namespaces, converging continuously with the listed peers via
// power-of-two-choices probing and escalating repair (see
// internal/cluster). Every member must run the same workload flags and
// the same -sets list; each member's sets start with divergent extra
// points derived from its own -listen address, so a fresh mesh visibly
// converges. The default namespace stays a plain Sync set, so v1
// clients (-connect ... -proto sync) interoperate unchanged.
//
//	reconciled -listen :7441 -cluster :7442,:7443 -sets alpha,beta
//	reconciled -cluster-demo 3                    # in-process 3-node mesh:
//	                                              # diverge, churn, converge
//
// With -data-dir the cluster modes become crash-recoverable: every
// named set keeps a write-ahead journal plus epoch snapshots under the
// directory (see internal/store/durable), -fsync picks the journal
// sync policy (always | batch | off), startup recovers whatever state
// a previous life left behind, and graceful shutdown drains into a
// final snapshot so the next boot replays nothing. A killed process
// restarts from its journal with bit-identical sketches and catches up
// with the mesh through the ordinary delta tiers.
//
//	reconciled -listen :7441 -cluster :7442 -data-dir /var/lib/reconciled
//	reconciled -cluster-demo 3 -data-dir /tmp/rd  # converge, drain, then
//	                                              # verify recovery matches
//
// With -join the mesh becomes self-organising: the daemon gossips a
// SWIM-style member table with the listed seed members (any -cluster
// list contributes extra seeds), and a consistent-hash ring over the
// live membership decides which of the -sets shards each member hosts
// (-replication owners per shard; see internal/gossip and
// internal/placement). A member that gains ownership pulls the shard
// through the ordinary repair path; one that loses it drops only
// after handoff confirms every owner holds the content; SIGINT/
// SIGTERM announces a graceful leave so shards move immediately, not
// after a suspicion timeout. Every member must run the same workload
// flags, -sets list, -replication and -seed (the ring's hash family);
// -advertise (default: the -listen address) is the address other
// members dial — the node's gossip identity — so give each member a
// reachable host:port.
//
//	reconciled -listen :7441 -advertise h1:7441 -join h2:7442,h3:7443
//	reconciled -listen :7442 -advertise h2:7442 -join h1:7441 -replication 2
//
// With -admin the daemon serves its operator surface on a dedicated
// localhost HTTP listener: set create/drop/list with live
// reconciliation stats, cluster membership/placement/health views, a
// graceful-drain trigger, a Prometheus /metrics endpoint, and pprof —
// see internal/admin and the README's Operations section. -config
// loads any flag from a file (JSON object or flat YAML lines);
// explicit flags win over file values.
//
//	reconciled -listen :7441 -cluster h2:7441 -admin localhost:7470
//	reconciled -config /etc/reconciled.yaml -listen :7441
//
// On SIGINT/SIGTERM — or a POST to the admin API's /api/v1/drain —
// every serving mode stops accepting, drains in-flight sessions for up
// to -drain, force-closes stragglers, shuts the operator listeners
// down, and prints final stats before exiting.
//
// Workload flags (-d, -n, -k, -noise, -r1, -r2, -diff, -seed, and
// whether -mutate is zero) must match between server and client;
// -workers, -max-sessions and timeouts are local tuning.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/admin"
	"repro/internal/cluster"
	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/gossip"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/netproto"
	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/session"
	"repro/internal/setsets"
	"repro/internal/store"
	"repro/internal/store/durable"
	"repro/internal/workload"
)

type config struct {
	// workload (must agree between server and client)
	d     int
	n     int
	k     int
	noise float64
	r1    float64
	r2    float64
	diff  int
	seed  uint64
	// mutate enables live sets: demo churn count, or server-side
	// mutations per second. Zero vs nonzero must agree between server
	// and client (it selects the sync ID derivation).
	mutate int
	// local tuning
	workers     int
	maxSessions int
	timeout     time.Duration
	// quarantine is the health ledger's base quarantine span in
	// anti-entropy rounds (cluster modes); 0 disables eligibility
	// filtering while still tracking per-peer scores and RTTs.
	quarantine int
	// mux pools one RSYN v3 carrier connection per peer (cluster modes)
	// and serves v3 carrier hellos; false emulates a pre-v3 daemon.
	mux bool
}

// fixture is the deterministic two-party state both endpoints derive
// from the shared flags.
type fixture struct {
	emdParams emd.Params
	emdSA     metric.PointSet
	emdSB     metric.PointSet

	gapParams gap.Params
	gapSpace  metric.Space
	gapSA     metric.PointSet
	gapSB     metric.PointSet

	syncParams netproto.SyncParams
	serverIDs  []uint64
	clientIDs  []uint64

	ssParams   setsets.Params
	serverKids []setsets.Child
	clientKids []setsets.Child
}

func newFixture(c config) (*fixture, error) {
	f := &fixture{}

	emdSpace := metric.HammingCube(c.d)
	inst := workload.NewEMDInstance(emdSpace, c.n, c.k, c.noise, c.seed)
	f.emdParams = emd.DefaultParams(emdSpace, c.n, c.k, c.seed+1)
	f.emdParams.Workers = c.workers
	f.emdSA, f.emdSB = inst.SA, inst.SB

	f.gapSpace = metric.HammingCube(4 * c.d)
	ginst, err := workload.NewGapInstance(f.gapSpace, c.n, c.k, 1, c.r1, c.r2, c.seed)
	if err != nil {
		return nil, fmt.Errorf("gap instance: %w", err)
	}
	// N bounds both parties: Alice holds n+k points, Bob n+1 (the
	// instance plants one Bob-only point), so budget n+k+1.
	f.gapParams = gap.Params{
		Space: f.gapSpace, N: c.n + c.k + 1, R1: c.r1, R2: c.r2,
		Seed: c.seed + 2, Workers: c.workers,
	}
	f.gapSA, f.gapSB = ginst.SA, ginst.SB

	src := rng.New(c.seed + 3)
	shared := make([]uint64, 20*c.n)
	for i := range shared {
		shared[i] = src.Uint64()
	}
	f.syncParams = netproto.SyncParams{Seed: c.seed + 4, Workers: c.workers}
	f.serverIDs = append([]uint64{}, shared...)
	f.clientIDs = append([]uint64{}, shared...)
	for i := 0; i < c.diff; i++ {
		f.serverIDs = append(f.serverIDs, src.Uint64())
		f.clientIDs = append(f.clientIDs, src.Uint64())
	}

	f.ssParams = setsets.Params{PayloadBytes: 16, Seed: c.seed + 5}
	child := func(tag uint64) setsets.Child {
		p := make([]byte, 16)
		for i := 0; i < 8; i++ {
			p[i] = byte(tag >> (8 * i))
		}
		return setsets.Child{Payload: p}
	}
	for i := 0; i < c.n; i++ {
		cc := child(uint64(i))
		f.serverKids = append(f.serverKids, cc)
		f.clientKids = append(f.clientKids, cc)
	}
	for i := 0; i < c.diff; i++ {
		f.serverKids = append(f.serverKids, child(1<<32+uint64(i)))
		f.clientKids = append(f.clientKids, child(1<<33+uint64(i)))
	}
	return f, nil
}

// liveState owns the server's live sets in mutate mode and the mirrors
// the churner replaces points through.
type liveState struct {
	mu        sync.Mutex
	src       *rng.Source
	emdSet    *live.Set
	gapSet    *live.Set
	emdSpace  metric.Space
	gapSpace  metric.Space
	emdMirror metric.PointSet
	gapMirror metric.PointSet
	mutations int
}

func newLiveState(cfg config, f *fixture) (*liveState, error) {
	emdCfg := live.Config{
		EMD:  &f.emdParams,
		Sync: &live.SyncConfig{Seed: f.syncParams.Seed},
	}
	emdSet, err := live.NewSet(emdCfg, f.emdSA)
	if err != nil {
		return nil, fmt.Errorf("live emd set: %w", err)
	}
	gapSet, err := live.NewSet(live.Config{Gap: &f.gapParams}, f.gapSA)
	if err != nil {
		return nil, fmt.Errorf("live gap set: %w", err)
	}
	return &liveState{
		src:       rng.New(cfg.seed ^ 0xc4a12),
		emdSet:    emdSet,
		gapSet:    gapSet,
		emdSpace:  f.emdParams.Space,
		gapSpace:  f.gapSpace,
		emdMirror: f.emdSA.Clone(),
		gapMirror: f.gapSA.Clone(),
	}, nil
}

func randomPoint(space metric.Space, src *rng.Source) metric.Point {
	pt := make(metric.Point, space.Dim)
	for i := range pt {
		pt[i] = int32(src.Uint64() % uint64(space.Delta+1))
	}
	return pt
}

// churn performs n point replacements on each live set
// (size-preserving — the EMD model wants equal cardinalities).
func (st *liveState) churn(n int) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := 0; i < n; i++ {
		ei := int(st.src.Uint64() % uint64(len(st.emdMirror)))
		ept := randomPoint(st.emdSpace, st.src)
		if err := st.emdSet.ApplyBatch([]live.Op{
			{Remove: true, Point: st.emdMirror[ei]},
			{Point: ept},
		}); err != nil {
			return err
		}
		st.emdMirror[ei] = ept
		gi := int(st.src.Uint64() % uint64(len(st.gapMirror)))
		gpt := randomPoint(st.gapSpace, st.src)
		if err := st.gapSet.ApplyBatch([]live.Op{
			{Remove: true, Point: st.gapMirror[gi]},
			{Point: gpt},
		}); err != nil {
			return err
		}
		st.gapMirror[gi] = gpt
		st.mutations++
	}
	return nil
}

func main() {
	listen := flag.String("listen", "", "serve on this address (host:port, or unix:/path)")
	connect := flag.String("connect", "", "run one client session against this address")
	proto := flag.String("proto", "emd", "client protocol: emd | gap | sync | setsets | live-emd (with -mutate)")
	demo := flag.Int("demo", 0, "in-process demo: serve and run N concurrent mixed clients")
	clusterPeers := flag.String("cluster", "", "comma-separated peer addresses: join an anti-entropy mesh (needs -listen)")
	join := flag.String("join", "", "comma-separated gossip seed members: self-organising sharded mesh (needs -listen; any -cluster list adds seeds)")
	advertise := flag.String("advertise", "", "address other members dial — the gossip identity (default: the -listen address)")
	replication := flag.Int("replication", 3, "owners per shard on the placement ring (gossip mode)")
	clusterDemo := flag.Int("cluster-demo", 0, "in-process anti-entropy demo: N nodes diverge, churn, converge")
	setNames := flag.String("sets", "alpha,beta", "named sets hosted in cluster mode (comma-separated)")
	interval := flag.Duration("interval", time.Second, "anti-entropy round period (cluster mode)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline")
	dataDir := flag.String("data-dir", "", "durable state directory (cluster modes): WAL + snapshots, recovery on startup")
	fsyncPolicy := flag.String("fsync", "batch", "journal fsync policy with -data-dir: always | batch | off")

	d := flag.Int("d", 128, "EMD dimension (gap uses 4d)")
	n := flag.Int("n", 64, "points / children per party")
	k := flag.Int("k", 4, "outlier budget")
	noise := flag.Float64("noise", 2, "per-point noise radius (emd)")
	r1 := flag.Float64("r1", 8, "close radius (gap)")
	r2 := flag.Float64("r2", 0, "far radius (gap; default d)")
	diff := flag.Int("diff", 16, "per-side exclusive IDs/children (sync, setsets)")
	seed := flag.Uint64("seed", 1, "shared public-coin seed")
	mutate := flag.Int("mutate", 0, "live-set churn: demo mutation count, or server mutations/sec")

	workers := flag.Int("workers", 0, "sketch-construction workers (0 = GOMAXPROCS)")
	mux := flag.Bool("mux", true, "pool one RSYN v3 carrier per peer (cluster modes) and serve v3 carriers; -mux=false emulates a pre-v3 daemon")
	maxSessions := flag.Int("max-sessions", 64, "concurrent session cap (server)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-session deadline")
	quarantine := flag.Int("quarantine", 16, "peer quarantine span in rounds (cluster modes); 0 observes health without skipping peers")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	adminAddr := flag.String("admin", "", "serve the admin API and /metrics on this address (e.g. localhost:7470)")
	configPath := flag.String("config", "", "config file (YAML key: value lines or a JSON object); explicit flags win")
	flag.Parse()

	if *configPath != "" {
		// File values fill in whatever the command line left at its
		// default; explicitly passed flags always win.
		if err := applyConfigFile(*configPath, flag.CommandLine); err != nil {
			fail("%v", err)
		}
	}

	var pprofSrv *http.Server
	if *pprofAddr != "" {
		// Production profiling endpoint: confirms the hot-path numbers
		// (allocs, CPU) on a live daemon instead of only in benchmarks.
		// The handlers live on a dedicated mux — not the process-global
		// http.DefaultServeMux — and the server is shut down with the
		// rest of the daemon instead of holding its listener until the
		// process dies.
		mux := http.NewServeMux()
		admin.RegisterPprof(mux)
		pprofSrv = &http.Server{
			Addr:              *pprofAddr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("pprof: http://%s/debug/pprof/", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	ops := opsServers{adminAddr: *adminAddr, pprof: pprofSrv}

	cfg := config{
		d: *d, n: *n, k: *k, noise: *noise, r1: *r1, r2: *r2,
		diff: *diff, seed: *seed, mutate: *mutate,
		workers: *workers, maxSessions: *maxSessions, timeout: *timeout,
		mux: *mux, quarantine: *quarantine,
	}
	if cfg.r2 == 0 {
		cfg.r2 = float64(cfg.d)
	}
	f, err := newFixture(cfg)
	if err != nil {
		fail("%v", err)
	}

	switch {
	case *clusterDemo > 0:
		runClusterDemo(cfg, f, *clusterDemo, *setNames, *drain, *dataDir, *fsyncPolicy)
	case *listen != "" && (*clusterPeers != "" || *join != ""):
		runCluster(cfg, f, *listen, *clusterPeers, *join, *advertise, *setNames, *interval, *drain, *dataDir, *fsyncPolicy, *replication, ops)
	case *listen != "":
		runServer(cfg, f, *listen, *drain, ops)
	case *connect != "":
		network, host := splitAddr(*connect)
		if err := runClient(cfg, f, network, host, *proto, true); err != nil {
			fail("%v", err)
		}
	case *demo > 0:
		runDemo(cfg, f, *demo)
	default:
		fmt.Fprintln(os.Stderr, "reconciled: need -listen, -connect, -demo or -cluster-demo (see -help)")
		os.Exit(2)
	}
}

// opsServers carries the operator-facing HTTP pieces the serving modes
// wire up: where to bind the admin control plane, and the standalone
// pprof server (already running) that graceful shutdown must stop.
type opsServers struct {
	adminAddr string
	pprof     *http.Server
}

// stop shuts the operator servers down within the drain deadline, so a
// clean exit leaves no listener behind.
func (o opsServers) stop(adm *admin.Server, drain time.Duration, logf func(string, ...any)) {
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if adm != nil {
		if err := adm.Shutdown(ctx); err != nil {
			logf("admin shutdown: %v", err)
		}
	}
	if o.pprof != nil {
		if err := o.pprof.Shutdown(ctx); err != nil {
			logf("pprof shutdown: %v", err)
		}
	}
}

// newServer builds the daemon's session server: it plays Alice for the
// point-set protocols (it owns the canonical set and ships sketches)
// and the responder for sync and setsets. With cfg.mutate > 0 the
// point-set state lives in live sets: EMD is served as live-emd (epoch
// tagging plus delta sync), Gap from cached key payloads, and sync from
// incrementally maintained point fingerprints; the returned liveState
// drives churn.
func newServer(cfg config, f *fixture, logf func(string, ...any)) (*session.Server, *liveState) {
	srv := session.NewServer(session.Config{
		MaxSessions:    cfg.maxSessions,
		SessionTimeout: cfg.timeout,
		DisableMux:     !cfg.mux,
		Logf:           logf,
	})
	srv.Handle(func() netproto.Handler { return netproto.NewSetSetsResponder(f.ssParams, f.serverKids) })
	if cfg.mutate > 0 {
		st, err := newLiveState(cfg, f)
		if err != nil {
			fail("%v", err)
		}
		emdFactory, err := netproto.NewLiveEMDSenderFactory(st.emdSet)
		if err != nil {
			fail("live emd: %v", err)
		}
		gapFactory, err := netproto.NewLiveGapSenderFactory(st.gapSet)
		if err != nil {
			fail("live gap: %v", err)
		}
		syncFactory, err := netproto.NewLiveSyncResponderFactory(f.syncParams, st.emdSet)
		if err != nil {
			fail("live sync: %v", err)
		}
		srv.Handle(emdFactory)
		srv.Handle(gapFactory)
		srv.Handle(syncFactory)
		return srv, st
	}
	emdFactory, err := netproto.NewEMDSenderFactory(f.emdParams, f.emdSA)
	if err != nil {
		fail("emd sketch: %v", err)
	}
	srv.Handle(emdFactory)
	srv.Handle(func() netproto.Handler { return netproto.NewGapSender(f.gapParams, f.gapSA) })
	srv.Handle(func() netproto.Handler { return netproto.NewSyncResponder(f.syncParams, f.serverIDs) })
	return srv, nil
}

func splitAddr(addr string) (network, host string) {
	if strings.HasPrefix(addr, "unix:") {
		return "unix", strings.TrimPrefix(addr, "unix:")
	}
	return "tcp", addr
}

// signalChan subscribes to SIGINT/SIGTERM.
func signalChan() <-chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch
}

// shutdown drains the server gracefully and prints the final tallies —
// the daemon's answer to SIGINT/SIGTERM in every serving mode, instead
// of dying mid-frame.
func shutdown(srv *session.Server, drain time.Duration, logger *log.Logger) {
	logger.Printf("shutting down: draining in-flight sessions (up to %v)", drain)
	if err := srv.Shutdown(drain); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	total, _ := srv.Stats()
	logger.Printf("final: %d sessions ok, %d failed; %s (%.2f MB); max payload %d bits",
		srv.Served(), srv.Failed(), total, float64(total.TotalBytes())/1e6, total.MaxPayload())
}

func runServer(cfg config, f *fixture, addr string, drain time.Duration, ops opsServers) {
	logger := log.New(os.Stderr, "reconciled: ", log.LstdFlags|log.Lmicroseconds)
	srv, st := newServer(cfg, f, logger.Printf)
	network, host := splitAddr(addr)
	l, err := net.Listen(network, host)
	if err != nil {
		fail("listen: %v", err)
	}
	drainCh := make(chan struct{})
	var adm *admin.Server
	if ops.adminAddr != "" {
		// v1 server mode hosts no multi-tenant store, so the set
		// endpoints answer 503; session stats and /metrics still work.
		adm = admin.New(admin.Config{
			Session: srv,
			Drain:   func() { close(drainCh) },
			Logf:    logger.Printf,
		})
		aaddr, err := adm.Start(ops.adminAddr)
		if err != nil {
			fail("%v", err)
		}
		logger.Printf("admin API on http://%s/ (Prometheus on /metrics)", aaddr)
	}
	if st != nil {
		logger.Printf("serving live-emd, gap, sync, setsets on %s %s (max %d sessions, %d mutations/s)",
			network, l.Addr(), cfg.maxSessions, cfg.mutate)
		go func() {
			tick := time.NewTicker(time.Second / time.Duration(cfg.mutate))
			defer tick.Stop()
			for range tick.C {
				if err := st.churn(1); err != nil {
					logger.Printf("churn: %v", err)
					return
				}
			}
		}()
	} else {
		logger.Printf("serving emd, gap, sync, setsets on %s %s (max %d sessions)",
			network, l.Addr(), cfg.maxSessions)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	select {
	case err := <-serveErr:
		if err != session.ErrServerClosed {
			fail("serve: %v", err)
		}
	case sig := <-signalChan():
		logger.Printf("received %v", sig)
		shutdown(srv, drain, logger)
	case <-drainCh:
		logger.Printf("drain requested via admin API")
		shutdown(srv, drain, logger)
	}
	ops.stop(adm, drain, logger.Printf)
}

// hashAddr derives a node-unique seed from its advertised address, so
// cluster members launched with identical workload flags still start
// with visibly divergent named sets.
func hashAddr(addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr)) //nolint:errcheck
	return h.Sum64()
}

// clusterPoints draws deterministic points for cluster-set content.
func clusterPoints(space metric.Space, n int, seed uint64) metric.PointSet {
	src := rng.New(seed)
	out := make(metric.PointSet, n)
	for i := range out {
		out[i] = randomPoint(space, src)
	}
	return out
}

// churnBudget is the bounded number of churn adds per set a cluster
// member may apply (ticker mode and the in-process demo both stay
// within it); newClusterStore's capacity formula reserves this headroom
// for every member.
func churnBudget(cfg config) int {
	m := cfg.mutate
	if m < 2 {
		m = 2
	}
	return 4 * m
}

// newClusterStore builds one member's multi-tenant store: the default
// set (plain Sync over the fixture's canonical EMD points — the v1
// surface), and each named set with shared base content plus
// nodeTag-derived divergent extras. All parameters derive from the
// shared flags, so every member computes identical digests; the first
// named set also maintains an EMD sketch to exercise the live-emd tier.
func newClusterStore(cfg config, f *fixture, names []string, nodes int, nodeTag uint64) (*store.Store, error) {
	st := store.New()
	if err := populateClusterStore(cfg, f, names, nodes, nodeTag, st); err != nil {
		return nil, err
	}
	return st, nil
}

// clusterCatalog is the mesh-wide set catalog every member derives
// from the shared flags: each named set's exact live configuration.
// The static mesh (populateClusterStore) and the gossip placement
// path (-join) both build set configs here, so a set hosted by any
// member carries an identical parameter digest — two owners with
// different configs would never fingerprint-match. nodes is the
// member budget the capacity formula absorbs: capacity must hold the
// union of the shared base, every member's extras, and every member's
// bounded churn budget (see churnBudget), and it is digest-relevant
// via emd.Params.N — so it must derive from flags and an agreed
// budget, never from a member's local view of the topology.
func clusterCatalog(cfg config, f *fixture, names []string, nodes int) []cluster.CatalogSet {
	sync := &live.SyncConfig{Seed: f.syncParams.Seed}
	space := metric.HammingCube(cfg.d)
	capacity := cfg.n + nodes*(cfg.diff+churnBudget(cfg)) + 64
	out := make([]cluster.CatalogSet, len(names))
	for i, name := range names {
		c := live.Config{Sync: sync}
		if i == 0 {
			p := emd.DefaultParams(space, capacity, cfg.k, cfg.seed+9)
			p.Workers = cfg.workers
			c.EMD = &p
		}
		out[i] = cluster.CatalogSet{Name: name, Config: c}
	}
	return out
}

// setContent is set i's fresh-start points: shared base every member
// agrees on, plus nodeTag-derived divergent extras, so a fresh mesh
// visibly converges.
func setContent(cfg config, i int, nodeTag uint64) metric.PointSet {
	space := metric.HammingCube(cfg.d)
	base := clusterPoints(space, cfg.n, cfg.seed+uint64(i)*31+101)
	extras := clusterPoints(space, cfg.diff, nodeTag+uint64(i)*17+1)
	return append(base, extras...)
}

// populateClusterStore creates the member's sets in st, skipping any
// that are already present — a durable member recovers its sets from
// disk first, and only the ones its previous life never created get
// the fresh-start content.
func populateClusterStore(cfg config, f *fixture, names []string, nodes int, nodeTag uint64, st *store.Store) error {
	if _, ok := st.Get(""); !ok {
		if _, err := st.Create("", live.Config{Sync: &live.SyncConfig{Seed: f.syncParams.Seed}}, f.emdSA); err != nil {
			return err
		}
	}
	for i, cs := range clusterCatalog(cfg, f, names, nodes) {
		if _, ok := st.Get(cs.Name); ok {
			continue
		}
		if _, err := st.Create(cs.Name, cs.Config, setContent(cfg, i, nodeTag)); err != nil {
			return err
		}
	}
	return nil
}

// gossipCapacityNodes is the agreed member budget gossip-mode
// capacity assumes. Members may pass different -join seed lists and
// the membership grows at runtime, so — unlike the static mesh, where
// len(peers)+1 is flag-derived — the capacity formula cannot depend
// on any local view of the topology. A fixed budget keeps every
// member's catalog identical; it bounds how many distinct members can
// plant fresh-start extras into one set over its lifetime.
const gossipCapacityNodes = 64

// populateGossipStore seeds a gossip-mode member's store: the default
// v1 set always (skipped if durable recovery restored it), plus
// fresh-start content for the named sets the bootstrap ring — self
// plus the seed members — assigns to this member. The authoritative
// hosted roster follows the gossiped membership once rounds run:
// ApplyPlacement creates missing owned sets empty and the repair path
// fills them, and anything planted here that ownership moves away
// from reaches its owners through handoff before the local copy
// drops.
func populateGossipStore(cfg config, f *fixture, names []string, self string, seeds []string, replication int, st *store.Store) error {
	if _, ok := st.Get(""); !ok {
		if _, err := st.Create("", live.Config{Sync: &live.SyncConfig{Seed: f.syncParams.Seed}}, f.emdSA); err != nil {
			return err
		}
	}
	members := []string{self}
	seen := map[string]bool{self: true}
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			members = append(members, s)
		}
	}
	ring := placement.New(members, 0, cfg.seed)
	assign := ring.Assign(names, replication, 0)
	for i, cs := range clusterCatalog(cfg, f, names, gossipCapacityNodes) {
		owned := false
		for _, o := range assign[cs.Name] {
			if o == self {
				owned = true
				break
			}
		}
		if !owned {
			continue
		}
		if _, ok := st.Get(cs.Name); ok {
			continue
		}
		if _, err := st.Create(cs.Name, cs.Config, setContent(cfg, i, hashAddr(self))); err != nil {
			return err
		}
	}
	return nil
}

// openDurable opens the durability layer under dir, recovers whatever
// a previous life persisted into st, and attaches the persister so
// every set created from here on is journaled too.
func openDurable(dir, policy string, st *store.Store, logf func(string, ...any)) *durable.Store {
	pol, err := durable.ParseFsyncPolicy(policy)
	if err != nil {
		fail("%v", err)
	}
	d, err := durable.Open(dir, durable.Options{Fsync: pol, Logf: logf})
	if err != nil {
		fail("durable: %v", err)
	}
	stats, err := d.Recover(st)
	if err != nil {
		fail("recovery: %v", err)
	}
	st.SetPersister(d)
	logf("durable state in %s (fsync %s): recovered %s", dir, pol, stats)
	return d
}

func parseSets(csv string) []string {
	var names []string
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s != "" {
			names = append(names, s)
		}
	}
	return names
}

func runCluster(cfg config, f *fixture, addr, peersCSV, joinCSV, advertise, setsCSV string, interval, drain time.Duration, dataDir, fsyncPolicy string, replication int, ops opsServers) {
	logger := log.New(os.Stderr, "reconciled: ", log.LstdFlags|log.Lmicroseconds)
	peers := parseSets(peersCSV)
	names := parseSets(setsCSV)
	if len(names) == 0 {
		fail("cluster modes need at least one set in -sets")
	}
	network, host := splitAddr(addr)
	st := store.New()
	var dur *durable.Store
	if dataDir != "" {
		dur = openDurable(dataDir, fsyncPolicy, st, logger.Printf)
	}
	ccfg := cluster.Config{
		Store:      st,
		Peers:      peers,
		Network:    network,
		Interval:   interval,
		Seed:       cfg.seed ^ hashAddr(addr),
		DisableMux: !cfg.mux,
		Logf:       logger.Printf,
		Session: session.Config{
			MaxSessions:    cfg.maxSessions,
			SessionTimeout: cfg.timeout,
			Logf:           logger.Printf,
		},
		SessionTimeout:    cfg.timeout,
		QuarantineRounds:  cfg.quarantine,
		DisableQuarantine: cfg.quarantine == 0,
	}
	gossiping := joinCSV != ""
	if gossiping {
		self := advertise
		if self == "" {
			self = addr
		}
		// The static -cluster list doubles as extra gossip seeds: a
		// mixed invocation bootstraps from both.
		seeds := append(parseSets(joinCSV), peers...)
		if err := populateGossipStore(cfg, f, names, self, seeds, replication, st); err != nil {
			fail("cluster store: %v", err)
		}
		g, err := gossip.New(gossip.Config{
			Self:  self,
			Seeds: seeds,
			Seed:  cfg.seed ^ hashAddr(self),
			Logf:  logger.Printf,
		})
		if err != nil {
			fail("gossip: %v", err)
		}
		// Peer list and hosted roster are gossip-fed from here on; the
		// ring's hash family (PlacementSeed) is the shared -seed flag, so
		// every member computes identical owner sets.
		ccfg.Peers = nil
		ccfg.Seed = cfg.seed ^ hashAddr(self)
		ccfg.Membership = g
		ccfg.Catalog = clusterCatalog(cfg, f, names, gossipCapacityNodes)
		ccfg.Replication = replication
		ccfg.PlacementSeed = cfg.seed
	} else if err := populateClusterStore(cfg, f, names, len(peers)+1, hashAddr(addr), st); err != nil {
		fail("cluster store: %v", err)
	}
	node, err := cluster.New(ccfg)
	if err != nil {
		fail("cluster: %v", err)
	}
	l, err := node.Start(host)
	if err != nil {
		fail("cluster listen: %v", err)
	}
	if gossiping {
		logger.Printf("gossip member on %s %s: %d seeds, %d-shard catalog at R=%d, round every %v; %s",
			network, l.Addr(), len(parseSets(joinCSV))+len(peers), len(names), replication, interval, st.Stats())
	} else {
		logger.Printf("cluster member on %s %s: %d peers, sets %v + default, round every %v; %s",
			network, l.Addr(), len(peers), names, interval, st.Stats())
	}
	drainCh := make(chan struct{})
	var adm *admin.Server
	if ops.adminAddr != "" {
		self := advertise
		if self == "" {
			self = addr
		}
		adm = admin.New(admin.Config{
			Store:   st,
			Node:    node,
			Durable: dur,
			// Admin-created sets get the catalog's shared Sync parameters
			// (identical digest on every member that creates them) plus
			// this member's deterministic divergent seed content, exactly
			// like a flag-declared set's fresh start.
			SetConfig: func(name string, seedPoints int) (live.Config, metric.PointSet, error) {
				c := live.Config{Sync: &live.SyncConfig{Seed: f.syncParams.Seed}}
				var pts metric.PointSet
				if seedPoints > 0 {
					pts = clusterPoints(metric.HammingCube(cfg.d), seedPoints,
						cfg.seed^hashAddr(self)^hashAddr(name))
				}
				return c, pts, nil
			},
			Drain: func() { close(drainCh) },
			Logf:  logger.Printf,
		})
		aaddr, err := adm.Start(ops.adminAddr)
		if err != nil {
			fail("%v", err)
		}
		logger.Printf("admin API on http://%s/ (Prometheus on /metrics)", aaddr)
	}
	if cfg.mutate > 0 {
		go func() {
			tick := time.NewTicker(time.Second / time.Duration(cfg.mutate))
			defer tick.Stop()
			src := rng.New(cfg.seed ^ hashAddr(addr) ^ 0xc4a12)
			space := metric.HammingCube(cfg.d)
			// Anti-entropy convergence is add-wins: every add spreads to
			// the whole mesh and nothing un-spreads, so unbounded churn
			// would grow every member past the (digest-relevant, hence
			// fixed) EMD capacity and poison repairs mesh-wide. Each
			// member therefore churns a bounded budget the shared
			// capacity formula accounts for.
			budget := churnBudget(cfg)
			for range tick.C {
				if budget <= 0 {
					logger.Printf("churn budget exhausted (%d adds per set); store %s", churnBudget(cfg), st.Stats())
					return
				}
				budget--
				for _, name := range names {
					ls, ok := st.Get(name)
					if !ok {
						continue
					}
					fresh := randomPoint(space, src)
					if err := ls.Add(fresh); err != nil {
						logger.Printf("churn %q: %v", name, err)
					}
				}
			}
		}()
	}
	select {
	case sig := <-signalChan():
		logger.Printf("received %v", sig)
	case <-drainCh:
		logger.Printf("drain requested via admin API")
	}
	if gossiping {
		// Graceful departure: final push to co-owners, Left announcement
		// to every active member, then close — shards move immediately
		// instead of after a suspicion timeout.
		logger.Printf("leaving mesh (drain %v)", drain)
		if err := node.Leave(drain); err != nil {
			logger.Printf("leave: %v", err)
		}
	} else {
		logger.Printf("closing cluster node (drain %v)", drain)
		if err := node.Close(drain); err != nil {
			logger.Printf("close: %v", err)
		}
	}
	if dur != nil {
		// Snapshot-on-drain: seal every journal at its final epoch so the
		// next boot replays nothing.
		if err := dur.Close(); err != nil {
			logger.Printf("durable close: %v", err)
		} else {
			logger.Printf("durable state drained: final snapshots written to %s", dataDir)
		}
	}
	if gossiping {
		p := node.Placement()
		logger.Printf("placement: %d acquired, %d dropped after handoff, %d still relinquishing",
			p.Acquired, p.Dropped, p.Relinquishing)
	}
	for name, m := range node.Metrics() {
		if name == "" {
			name = "<default>"
		}
		logger.Printf("set %s: %v", name, m)
	}
	total, _ := node.Server().Stats()
	logger.Printf("net: %s", node.NetStats())
	logger.Printf("health: %s", node.HealthSummary())
	logger.Printf("final: %d sessions ok, %d failed; %s; max payload %d bits; store %s",
		node.Server().Served(), node.Server().Failed(), total, total.MaxPayload(), st.Stats())
	ops.stop(adm, drain, logger.Printf)
}

// runClusterDemo is the in-process mesh: count nodes with divergent
// stores, a churn phase racing anti-entropy, then settle rounds until
// every set is fingerprint-identical on every node — plus one v1 client
// session against the default namespace to prove interop survived the
// multi-tenant refactor. With -data-dir every node journals under
// <dir>/node<i>, and after the drain the demo reopens node 0's
// directory and verifies recovery reproduces its fingerprints exactly
// (use a fresh directory per demo run). Exit status reports
// convergence.
func runClusterDemo(cfg config, f *fixture, count int, setsCSV string, drain time.Duration, dataDir, fsyncPolicy string) {
	names := parseSets(setsCSV)
	if len(names) == 0 {
		fail("-cluster-demo needs at least one set in -sets")
	}
	if count < 2 {
		fail("-cluster-demo needs at least 2 nodes")
	}
	logf := func(string, ...any) {}
	nodes := make([]*cluster.Node, count)
	stores := make([]*store.Store, count)
	durables := make([]*durable.Store, count)
	addrs := make([]string, count)
	for i := range nodes {
		st := store.New()
		if dataDir != "" {
			durables[i] = openDurable(filepath.Join(dataDir, fmt.Sprintf("node%d", i)), fsyncPolicy, st, logf)
		}
		if err := populateClusterStore(cfg, f, names, count, uint64(i+1)*0x9e3779b9, st); err != nil {
			fail("cluster store %d: %v", i, err)
		}
		stores[i] = st
		node, err := cluster.New(cluster.Config{
			Store:      st,
			Interval:   -1, // demo drives rounds manually
			Seed:       cfg.seed + uint64(i),
			DisableMux: !cfg.mux,
		})
		if err != nil {
			fail("cluster node %d: %v", i, err)
		}
		l, err := node.Start("127.0.0.1:0")
		if err != nil {
			fail("cluster listen %d: %v", i, err)
		}
		nodes[i] = node
		addrs[i] = l.Addr().String()
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close(drain) //nolint:errcheck
			}
		}
	}()
	for i, n := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		n.SetPeers(peers)
	}
	fmt.Printf("cluster-demo: %d nodes, sets %v, %d divergent points each\n", count, names, cfg.diff)

	converged := func() bool {
		for _, name := range names {
			var fp uint64
			for i, st := range stores {
				ls, _ := st.Get(name)
				if i == 0 {
					fp = ls.IDFingerprint()
				} else if ls.IDFingerprint() != fp {
					return false
				}
			}
		}
		return true
	}
	start := time.Now()
	space := metric.HammingCube(cfg.d)
	churn := cfg.mutate
	if churn == 0 {
		churn = 2
	}
	// Phase 1: churn races anti-entropy.
	for round := 0; round < 3; round++ {
		for i, n := range nodes {
			src := rng.New(cfg.seed + uint64(round*100+i))
			for _, name := range names {
				ls, _ := stores[i].Get(name)
				for c := 0; c < churn; c++ {
					if err := ls.Add(randomPoint(space, src)); err != nil {
						fail("churn: %v", err)
					}
				}
			}
			if _, err := n.ReconcileOnce(); err != nil {
				fail("round %d node %d: %v", round, i, err)
			}
		}
	}
	// Phase 2: settle.
	const maxRounds = 30
	rounds := -1
	for round := 0; round < maxRounds; round++ {
		for i, n := range nodes {
			if _, err := n.ReconcileOnce(); err != nil {
				fail("settle round %d node %d: %v", round, i, err)
			}
		}
		if converged() {
			rounds = round + 1
			break
		}
	}
	for i, n := range nodes {
		for _, name := range names {
			m := n.Metrics()[name]
			fmt.Printf("cluster-demo: node %d set %s: %v\n", i, name, m)
		}
	}
	if rounds < 0 {
		fmt.Fprintf(os.Stderr, "cluster-demo: NOT converged after %d settle rounds\n", maxRounds)
		os.Exit(1)
	}
	// v1 interop: a plain (v1 hello) sync session against node 0's
	// default namespace.
	ids := live.IDsOf(f.syncParams.Seed, f.emdSB)
	h := netproto.NewSyncInitiator(f.syncParams, ids)
	if _, err := (session.Dialer{Addr: addrs[0]}).Do(h); err != nil {
		fail("v1 default-namespace sync: %v", err)
	}
	fmt.Printf("cluster-demo: v1 client vs default namespace: %d server-only / %d client-only IDs\n",
		len(h.TheirsOnly), len(h.MinesOnly))
	// Dial economy: with pooled v3 carriers the mesh reuses one
	// connection per peer across every session; without (-mux=false)
	// dials equal sessions.
	var net session.PoolStats
	for _, n := range nodes {
		ns := n.NetStats()
		net.Dials += ns.Dials
		net.Reuses += ns.Reuses
		net.Fallbacks += ns.Fallbacks
		net.Sessions += ns.Sessions
	}
	fmt.Printf("cluster-demo: net: %s\n", net)
	if dataDir != "" {
		// Drain the mesh, then prove durability end to end: reopening
		// node 0's directory must reproduce its converged fingerprints
		// from snapshots alone (the drain sealed every journal).
		for i, n := range nodes {
			n.Close(drain) //nolint:errcheck
			nodes[i] = nil
		}
		for i, d := range durables {
			if err := d.Close(); err != nil {
				fail("durable close node%d: %v", i, err)
			}
		}
		reopened, err := durable.Open(filepath.Join(dataDir, "node0"), durable.Options{Fsync: durable.FsyncOff})
		if err != nil {
			fail("reopen: %v", err)
		}
		rst := store.New()
		stats, err := reopened.Recover(rst)
		if err != nil {
			fail("recovery: %v", err)
		}
		if stats.Replayed != 0 {
			fail("drain left %d unsnapshotted records in the journal", stats.Replayed)
		}
		for _, name := range append([]string{""}, names...) {
			want, _ := stores[0].Get(name)
			got, ok := rst.Get(name)
			if !ok || got.IDFingerprint() != want.IDFingerprint() || got.Epoch() != want.Epoch() {
				fail("recovery mismatch for set %q", name)
			}
		}
		if err := reopened.Close(); err != nil {
			fail("reopened close: %v", err)
		}
		fmt.Printf("cluster-demo: recovery verified: %d sets reopened from %s with matching fingerprints (%s)\n",
			1+len(names), dataDir, stats)
	}
	fmt.Printf("cluster-demo: converged in %d settle rounds, %v total\n",
		rounds, time.Since(start).Round(time.Millisecond))
}

// runClient runs one session of the named protocol and reports the
// outcome. It returns an error both on transport failure and on a
// result that violates the protocol's guarantee, so the exit status is
// an end-to-end check. For live-emd, cache carries the sketch across
// sessions (nil runs a standalone two-session full-then-delta
// demonstration).
func runClient(cfg config, f *fixture, network, addr, proto string, verbose bool) error {
	return runClientCached(cfg, f, network, addr, proto, verbose, nil)
}

func runClientCached(cfg config, f *fixture, network, addr, proto string, verbose bool, cache *netproto.EMDCache) error {
	dial := session.Dialer{Network: network, Addr: addr}
	sayf := func(format string, args ...any) {
		if verbose {
			fmt.Printf(format+"\n", args...)
		}
	}
	id, ok := netproto.ProtoByName(proto)
	if !ok {
		names := make([]string, 0, 5)
		for _, p := range netproto.Protos() {
			names = append(names, p.String())
		}
		return fmt.Errorf("unknown protocol %q (want %s)", proto, strings.Join(names, " | "))
	}
	start := time.Now()
	switch id {
	case netproto.ProtoLiveEMD:
		sessions := 1
		if cache == nil {
			// Standalone invocation: run two sessions on one cache so
			// the second demonstrates the delta path (empty delta if
			// the server did not churn in between).
			cache = &netproto.EMDCache{}
			sessions = 2
		}
		for i := 0; i < sessions; i++ {
			h := netproto.NewLiveEMDReceiver(f.emdParams, f.emdSB, cache)
			st, err := dial.Do(h)
			if err != nil {
				return err
			}
			if !h.Result.Failed && len(h.Result.SPrime) != len(f.emdSB) {
				return fmt.Errorf("live-emd: |S'B| = %d, want %d", len(h.Result.SPrime), len(f.emdSB))
			}
			mode := "full"
			if h.UsedDelta {
				mode = "delta"
			}
			sayf("live-emd: epoch %d via %s transfer, %d points reconciled in %v; %s",
				h.Epoch, mode, len(h.Result.SPrime), time.Since(start).Round(time.Millisecond), st)
		}
	case netproto.ProtoEMD:
		h := netproto.NewEMDReceiver(f.emdParams, f.emdSB)
		if _, err := dial.Do(h); err != nil {
			return err
		}
		if h.Result.Failed {
			sayf("emd: protocol reported failure (Theorem 3.4 allows prob <= 1/8)")
			return nil
		}
		if len(h.Result.SPrime) != len(f.emdSB) {
			return fmt.Errorf("emd: |S'B| = %d, want %d", len(h.Result.SPrime), len(f.emdSB))
		}
		sayf("emd: reconciled %d points at level %d/%d in %v; %s",
			len(h.Result.SPrime), h.Result.Level, h.Result.Levels,
			time.Since(start).Round(time.Millisecond), h.Result.Stats)
	case netproto.ProtoGap:
		h := netproto.NewGapReceiver(f.gapParams, f.gapSB)
		if _, err := dial.Do(h); err != nil {
			return err
		}
		if cfg.mutate == 0 {
			// Against a live server the canonical set has churned past
			// the fixture, so coverage is only checkable when static.
			for _, pt := range f.gapSA {
				if dist, _ := h.Result.SPrime.MinDistanceTo(f.gapSpace, pt); dist > f.gapParams.R2 {
					return fmt.Errorf("gap: uncovered point at distance %v > r2=%v", dist, f.gapParams.R2)
				}
			}
		}
		sayf("gap: received %d elements in %v; %s",
			len(h.Result.TA), time.Since(start).Round(time.Millisecond), h.Result.Stats)
	case netproto.ProtoSync:
		ids := f.clientIDs
		if cfg.mutate > 0 {
			// Live servers reconcile point fingerprints, not the static
			// ID workload; derive ours the same way.
			ids = live.IDsOf(f.syncParams.Seed, f.emdSB)
		}
		h := netproto.NewSyncInitiator(f.syncParams, ids)
		st, err := dial.Do(h)
		if err != nil {
			return err
		}
		sayf("sync: learned %d server-only and reported %d client-only IDs in %v; %s",
			len(h.TheirsOnly), len(h.MinesOnly), time.Since(start).Round(time.Millisecond), st)
	case netproto.ProtoSetSets:
		h := netproto.NewSetSetsInitiator(f.ssParams, f.clientKids)
		st, err := dial.Do(h)
		if err != nil {
			return err
		}
		sayf("setsets: %d server-only / %d client-only children in %d rounds, %v; %s",
			len(h.Result.BobOnly), len(h.Result.AliceOnly), h.Result.Rounds,
			time.Since(start).Round(time.Millisecond), st)
	}
	return nil
}

// runDemo spins up the server in-process and drives peers concurrent
// client sessions cycling through every protocol — the end-to-end proof
// that the whole stack reconciles over real sockets. With cfg.mutate >
// 0 the demo runs two waves around a churn burst: wave one fills every
// peer's sketch cache (full transfers), then cfg.mutate point
// replacements land, and wave two's returning peers take the delta
// path while churn keeps racing the sessions.
func runDemo(cfg config, f *fixture, peers int) {
	srv, st := newServer(cfg, f, func(string, ...any) {})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail("demo listen: %v", err)
	}
	defer srv.Close()
	start := time.Now()
	var bad int
	if st == nil {
		protos := []string{"emd", "gap", "sync", "setsets"}
		fmt.Printf("demo: %d concurrent peers against %s\n", peers, l.Addr())
		bad = demoWave(cfg, f, l.Addr().String(), peers, func(i int) ([]string, *netproto.EMDCache) {
			return []string{protos[i%len(protos)]}, nil
		})
	} else {
		fmt.Printf("demo: %d concurrent peers against %s, %d mutations between waves\n",
			peers, l.Addr(), cfg.mutate)
		caches := make([]*netproto.EMDCache, peers)
		for i := range caches {
			caches[i] = &netproto.EMDCache{}
		}
		extras := []string{"gap", "sync", "setsets"}
		pick := func(i int) ([]string, *netproto.EMDCache) {
			// Every peer runs live-emd (cache warm-up is what wave two
			// demonstrates); odd peers add a second protocol session.
			if i%2 == 1 {
				return []string{"live-emd", extras[(i/2)%len(extras)]}, caches[i]
			}
			return []string{"live-emd"}, caches[i]
		}
		bad = demoWave(cfg, f, l.Addr().String(), peers, pick)
		if err := st.churn(cfg.mutate); err != nil {
			fail("churn: %v", err)
		}
		// Wave two races further churn against returning peers.
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < cfg.mutate; i++ {
				if err := st.churn(1); err != nil {
					return
				}
			}
		}()
		bad += demoWave(cfg, f, l.Addr().String(), peers, pick)
		<-done
		fmt.Printf("demo: live epoch %d after %d mutations (emd size %d)\n",
			st.emdSet.Epoch(), st.mutations, st.emdSet.Size())
	}
	elapsed := time.Since(start)
	srv.Close()
	total, nSessions := srv.Stats()
	fmt.Printf("demo: %d/%d sessions ok in %v; server total: %s (%d sessions, %.2f MB)\n",
		nSessions-bad, nSessions, elapsed.Round(time.Millisecond),
		total, nSessions, float64(total.TotalBytes())/1e6)
	if bad > 0 {
		os.Exit(1)
	}
}

// demoWave runs one concurrent wave of client sessions; pick names each
// peer's protocol sequence and (for live-emd) its persistent cache. It
// returns the number of failed peers.
func demoWave(cfg config, f *fixture, addr string, peers int, pick func(int) ([]string, *netproto.EMDCache)) int {
	errs := make([]error, peers)
	var wg sync.WaitGroup
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			protos, cache := pick(i)
			for _, proto := range protos {
				if err := runClientCached(cfg, f, "tcp", addr, proto, false, cache); err != nil {
					errs[i] = fmt.Errorf("%s: %w", proto, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	bad := 0
	for i, err := range errs {
		if err != nil {
			bad++
			fmt.Fprintf(os.Stderr, "demo: peer %d: %v\n", i, err)
		}
	}
	return bad
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "reconciled: "+format+"\n", args...)
	os.Exit(2)
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Config-file support: every flag can instead come from a file, so a
// deployment ships one reviewed config instead of a 20-flag command
// line. Two formats, detected by the first non-space byte:
//
//   - a JSON object of flag-name → scalar:  {"listen": ":7441", "n": 256}
//   - a YAML subset of "flag-name: value" lines (comments with #,
//     values optionally quoted) — enough for flat key/value configs
//     without pulling in a YAML dependency:
//
//     # reconciled.yaml
//     listen: :7441
//     sets: alpha,beta
//     data-dir: /var/lib/reconciled
//
// Precedence is strict: a flag passed explicitly on the command line
// always beats the file; the file beats built-in defaults. Keys must
// name real flags (typos fail startup rather than silently doing
// nothing), and "config" itself cannot appear in a file.

// applyConfigFile loads path and applies its values to every flag in
// fs that was not set on the command line. Call after fs.Parse.
func applyConfigFile(path string, fs *flag.FlagSet) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	values, err := parseConfig(raw)
	if err != nil {
		return fmt.Errorf("config %s: %w", path, err)
	}
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	for key, value := range values {
		if key == "config" {
			return fmt.Errorf("config %s: a config file cannot set %q", path, key)
		}
		if fs.Lookup(key) == nil {
			return fmt.Errorf("config %s: unknown flag %q", path, key)
		}
		if explicit[key] {
			continue // command line wins
		}
		if err := fs.Set(key, value); err != nil {
			return fmt.Errorf("config %s: flag %q: %w", path, key, err)
		}
	}
	return nil
}

// parseConfig dispatches on the document's first non-space byte.
func parseConfig(raw []byte) (map[string]string, error) {
	trimmed := strings.TrimSpace(string(raw))
	if strings.HasPrefix(trimmed, "{") {
		return parseJSONConfig(raw)
	}
	return parseYAMLConfig(trimmed)
}

func parseJSONConfig(raw []byte) (map[string]string, error) {
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	out := make(map[string]string, len(doc))
	for key, v := range doc {
		switch val := v.(type) {
		case string:
			out[key] = val
		case bool:
			out[key] = strconv.FormatBool(val)
		case float64:
			if val == float64(int64(val)) {
				out[key] = strconv.FormatInt(int64(val), 10)
			} else {
				out[key] = strconv.FormatFloat(val, 'g', -1, 64)
			}
		default:
			return nil, fmt.Errorf("key %q: value must be a string, number or bool", key)
		}
	}
	return out, nil
}

func parseYAMLConfig(doc string) (map[string]string, error) {
	out := make(map[string]string)
	for i, line := range strings.Split(doc, "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		key, value, ok := strings.Cut(s, ":")
		if !ok {
			return nil, fmt.Errorf("line %d: want \"flag: value\", got %q", i+1, s)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if key == "" {
			return nil, fmt.Errorf("line %d: empty key", i+1)
		}
		// Strip a trailing comment, except inside a quoted value.
		if !strings.HasPrefix(value, `"`) && !strings.HasPrefix(value, `'`) {
			if j := strings.Index(value, " #"); j >= 0 {
				value = strings.TrimSpace(value[:j])
			}
		}
		value = unquote(value)
		if value == "" {
			return nil, fmt.Errorf("line %d: key %q has no value (nested structure is not supported)", i+1, key)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", i+1, key)
		}
		out[key] = value
	}
	return out, nil
}

// unquote strips one level of matched single or double quotes.
func unquote(v string) string {
	if len(v) >= 2 {
		if (v[0] == '"' && v[len(v)-1] == '"') || (v[0] == '\'' && v[len(v)-1] == '\'') {
			return v[1 : len(v)-1]
		}
	}
	return v
}

package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/emd"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/store/durable"
)

// The crash-kill test runs this binary twice: the parent spawns a
// helper process (gated on RECONCILED_CRASH_HELPER) that journals an
// endless deterministic churn stream with fsync-always, printing one
// acknowledged commit line per mutation. The parent SIGKILLs it
// mid-churn, recovers the data directory in-process, and checks the
// survivor against ground truth rebuilt from the same deterministic
// stream — then proves the restarted state re-converges with a peer
// through the delta tier, not a full transfer.

const crashSetName = "crash"

func crashSpace() metric.Space { return metric.HammingCube(32) }

func crashConfig(seed uint64) live.Config {
	p := emd.DefaultParams(crashSpace(), 256, 4, seed+1)
	return live.Config{
		EMD:  &p,
		Sync: &live.SyncConfig{Seed: seed},
	}
}

func crashInitial(seed uint64) metric.PointSet {
	return clusterPoints(crashSpace(), 96, seed+2)
}

// crashChurner yields the deterministic mutation stream both processes
// derive from the seed: size-preserving point replacements, one batch
// (= one epoch) per step.
type crashChurner struct {
	src    *rng.Source
	mirror metric.PointSet
}

func newCrashChurner(seed uint64) *crashChurner {
	return &crashChurner{src: rng.New(seed ^ 0xc4a5), mirror: crashInitial(seed).Clone()}
}

func (c *crashChurner) next() []live.Op {
	i := int(c.src.Uint64() % uint64(len(c.mirror)))
	pt := randomPoint(crashSpace(), c.src)
	ops := []live.Op{{Remove: true, Point: c.mirror[i]}, {Point: pt}}
	c.mirror[i] = pt
	return ops
}

var commitLine = regexp.MustCompile(`^commit epoch=(\d+) fp=([0-9a-f]{16})$`)

// TestCrashKillHelper is the victim process: it churns a journaled set
// forever (fsync-always, so every acknowledged commit is durable) and
// is only ever stopped by the parent's SIGKILL.
func TestCrashKillHelper(t *testing.T) {
	if os.Getenv("RECONCILED_CRASH_HELPER") == "" {
		t.Skip("helper process for TestCrashKillRecovery")
	}
	dir := os.Getenv("RECONCILED_CRASH_DIR")
	seed, err := strconv.ParseUint(os.Getenv("RECONCILED_CRASH_SEED"), 10, 64)
	if err != nil {
		t.Fatalf("bad seed: %v", err)
	}
	d, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncAlways, SnapshotEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.SetPersister(d)
	ls, err := st.Create(crashSetName, crashConfig(seed), crashInitial(seed))
	if err != nil {
		t.Fatal(err)
	}
	ch := newCrashChurner(seed)
	for {
		if err := ls.ApplyBatch(ch.next()); err != nil {
			t.Fatalf("churn: %v", err)
		}
		// The journal record for this epoch is fsynced; acknowledge it.
		fmt.Printf("commit epoch=%d fp=%016x\n", ls.Epoch(), ls.IDFingerprint())
	}
}

// TestCrashKillRecovery SIGKILLs a journaling process mid-churn and
// asserts the two durability claims end to end: recovery reproduces
// the journal's ground truth exactly (every acknowledged commit
// survives), and the restarted state rejoins a mesh through delta
// repair bounded by what it actually misses.
func TestCrashKillRecovery(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics")
	}
	dir := t.TempDir()
	const seed = 7

	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashKillHelper$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"RECONCILED_CRASH_HELPER=1",
		"RECONCILED_CRASH_DIR="+dir,
		fmt.Sprintf("RECONCILED_CRASH_SEED=%d", seed),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Collect acknowledged commits until the victim has done real work,
	// then kill it without warning.
	fps := make(map[uint64]uint64)
	var last uint64
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		m := commitLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		epoch, _ := strconv.ParseUint(m[1], 10, 64)
		fp, _ := strconv.ParseUint(m[2], 16, 64)
		fps[epoch] = fp
		last = epoch
		if len(fps) >= 50 {
			break
		}
	}
	if len(fps) < 50 {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		t.Fatalf("helper died after %d commits; stderr:\n%s", len(fps), stderr.String())
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no defer
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck

	// Recover the abandoned directory.
	d, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncOff, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	st := store.New()
	stats, err := d.Recover(st)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	t.Logf("recovered after SIGKILL at epoch %d: %s", last, stats)
	ls, ok := st.Get(crashSetName)
	if !ok {
		t.Fatalf("set %q not recovered", crashSetName)
	}
	epoch := ls.Epoch()
	if epoch < last {
		t.Fatalf("recovered epoch %d < last acknowledged commit %d: a fsynced mutation was lost", epoch, last)
	}
	if fp, ok := fps[epoch]; ok && fp != ls.IDFingerprint() {
		t.Fatalf("recovered fingerprint %016x != acknowledged %016x at epoch %d", ls.IDFingerprint(), fp, epoch)
	}

	// Ground truth: replay the same deterministic stream in memory up
	// to the recovered epoch. The journal must have reproduced it
	// bit-identically — ID fingerprint and EMD sketch fingerprint both.
	truth, err := live.NewSet(crashConfig(seed), crashInitial(seed))
	if err != nil {
		t.Fatal(err)
	}
	ch := newCrashChurner(seed)
	for truth.Epoch() < epoch {
		if err := truth.ApplyBatch(ch.next()); err != nil {
			t.Fatal(err)
		}
	}
	if truth.IDFingerprint() != ls.IDFingerprint() {
		t.Fatalf("recovered ID fingerprint %016x != journal ground truth %016x",
			ls.IDFingerprint(), truth.IDFingerprint())
	}
	truthSnap, recoveredSnap := truth.Snapshot(), ls.Snapshot()
	if truthSnap.EMDFingerprint != recoveredSnap.EMDFingerprint {
		t.Fatalf("recovered EMD sketch fingerprint %016x != journal ground truth %016x",
			recoveredSnap.EMDFingerprint, truthSnap.EMDFingerprint)
	}

	// Re-convergence: a peer holds the same converged content plus a
	// few points of its own. The restarted node must pull exactly that
	// difference through the delta tier — a full transfer would blow
	// the bound by an order of magnitude.
	extras := clusterPoints(crashSpace(), 8, seed+99)
	peerPoints := append(truthSnap.Points.Clone(), extras...)
	stB := store.New()
	if _, err := stB.Create(crashSetName, crashConfig(seed), peerPoints); err != nil {
		t.Fatal(err)
	}
	nodeA, err := cluster.New(cluster.Config{Store: st, Interval: -1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := cluster.New(cluster.Config{Store: stB, Interval: -1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	lA, err := nodeA.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close(time.Second)
	lB, err := nodeB.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close(time.Second)
	nodeA.SetPeers([]string{lB.Addr().String()})
	nodeB.SetPeers([]string{lA.Addr().String()})

	lsB, _ := stB.Get(crashSetName)
	converged := false
	for round := 0; round < 20; round++ {
		if _, err := nodeA.ReconcileOnce(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := nodeB.ReconcileOnce(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if ls.IDFingerprint() == lsB.IDFingerprint() {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("restarted node did not re-converge with its peer")
	}
	m := nodeA.Metrics()[crashSetName]
	if m.PointsReceived > uint64(len(extras)) {
		t.Fatalf("restarted node pulled %d points, more than the %d it was missing (full transfer?); metrics %v",
			m.PointsReceived, len(extras), m)
	}
	t.Logf("re-converged: %v", m)
}

package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testFlagSet mirrors the daemon flag shapes the loader must coerce:
// string, int, bool, float, duration, uint64.
func testFlagSet() (*flag.FlagSet, map[string]any) {
	fs := flag.NewFlagSet("reconciled", flag.ContinueOnError)
	vals := map[string]any{
		"listen":   fs.String("listen", "", ""),
		"n":        fs.Int("n", 64, ""),
		"mux":      fs.Bool("mux", true, ""),
		"noise":    fs.Float64("noise", 2, ""),
		"interval": fs.Duration("interval", time.Second, ""),
		"seed":     fs.Uint64("seed", 1, ""),
		"data-dir": fs.String("data-dir", "", ""),
	}
	fs.String("config", "", "")
	return fs, vals
}

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "conf")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConfigFileYAML(t *testing.T) {
	fs, vals := testFlagSet()
	if err := fs.Parse([]string{"-n", "999"}); err != nil {
		t.Fatal(err)
	}
	path := writeConfig(t, `
# deployment config
listen: 127.0.0.1:7441
n: 256            # ignored: -n was passed explicitly
mux: false
noise: 3.5
interval: 250ms
seed: 42
data-dir: "/var/lib/reconciled"
`)
	if err := applyConfigFile(path, fs); err != nil {
		t.Fatal(err)
	}
	if got := *vals["listen"].(*string); got != "127.0.0.1:7441" {
		t.Errorf("listen = %q", got)
	}
	if got := *vals["n"].(*int); got != 999 {
		t.Errorf("n = %d, want the explicit 999 to beat the file's 256", got)
	}
	if *vals["mux"].(*bool) {
		t.Error("mux not overridden to false")
	}
	if got := *vals["noise"].(*float64); got != 3.5 {
		t.Errorf("noise = %v", got)
	}
	if got := *vals["interval"].(*time.Duration); got != 250*time.Millisecond {
		t.Errorf("interval = %v", got)
	}
	if got := *vals["seed"].(*uint64); got != 42 {
		t.Errorf("seed = %d", got)
	}
	if got := *vals["data-dir"].(*string); got != "/var/lib/reconciled" {
		t.Errorf("data-dir = %q (quotes should strip)", got)
	}
}

func TestConfigFileJSON(t *testing.T) {
	fs, vals := testFlagSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	path := writeConfig(t, `{"listen": ":7441", "n": 128, "mux": false, "noise": 1.25}`)
	if err := applyConfigFile(path, fs); err != nil {
		t.Fatal(err)
	}
	if got := *vals["listen"].(*string); got != ":7441" {
		t.Errorf("listen = %q", got)
	}
	if got := *vals["n"].(*int); got != 128 {
		t.Errorf("n = %d", got)
	}
	if *vals["mux"].(*bool) {
		t.Error("mux not overridden")
	}
	if got := *vals["noise"].(*float64); got != 1.25 {
		t.Errorf("noise = %v", got)
	}
}

func TestConfigFileErrors(t *testing.T) {
	cases := []struct{ name, body string }{
		{"unknown flag", "bogus: 1\n"},
		{"config self-reference", "config: other.yaml\n"},
		{"bad value for typed flag", "n: not-a-number\n"},
		{"structure line", "cluster:\n  peers: a\n"},
		{"duplicate key", "n: 1\nn: 2\n"},
		{"malformed JSON", `{"listen": }`},
		{"non-scalar JSON", `{"listen": [1,2]}`},
	}
	for _, tc := range cases {
		fs, _ := testFlagSet()
		if err := fs.Parse(nil); err != nil {
			t.Fatal(err)
		}
		if err := applyConfigFile(writeConfig(t, tc.body), fs); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	fs, _ := testFlagSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := applyConfigFile(filepath.Join(t.TempDir(), "absent"), fs); err == nil {
		t.Error("missing file: no error")
	}
}

// Command experiments regenerates every evaluation artifact of the
// reproduction (the per-experiment index lives in DESIGN.md; measured
// results in EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-run E5] [-seed 12345] [-quick] [-list]
//
// With no flags it runs the full suite and prints one table per
// experiment, each headed by the paper claim it checks.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "", "run a single experiment by ID (e.g. E5)")
	seed := flag.Uint64("seed", 12345, "random seed (fixed seed ⇒ identical tables)")
	quick := flag.Bool("quick", false, "reduced trial counts")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	var todo []experiments.Experiment
	if *run != "" {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	} else {
		todo = experiments.All()
	}

	failed := false
	for _, e := range todo {
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		fmt.Printf("    claim: %s\n\n", e.Claim)
		start := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n\n", e.ID, err)
			failed = true
			continue
		}
		fmt.Print(tbl.String())
		fmt.Printf("\n(%s, seed %d, quick=%v)\n\n", time.Since(start).Round(time.Millisecond), *seed, *quick)
	}
	if failed {
		os.Exit(1)
	}
}

// Command simulate runs named fault-injection scenarios over the
// deterministic virtual network (internal/simnet) and reports whether
// the whole reconciliation stack — sessions, protocols, store, cluster
// anti-entropy — survived them: every set converged to the planted
// ground truth, no connections leaked, the pooled-buffer canary held.
//
// The event trace is deterministic: the same -scenario and -seed
// produce byte-identical output, so a failing seed from CI (or a soak
// run) is replayed exactly with the same invocation, and replay
// determinism itself is checked by diffing two runs.
//
// Usage:
//
//	simulate -list
//	simulate -scenario partition-rejoin -seed 42
//	simulate -scenario flaky-link-soak -seed 7 -trace trace.txt
//	simulate -scenario mesh-10-latency -mux=false   # per-session dialing baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/simnet/scenario"
)

func main() {
	var (
		name     = flag.String("scenario", "", "scenario to run (see -list)")
		seed     = flag.Uint64("seed", 42, "deterministic run seed")
		list     = flag.Bool("list", false, "list available scenarios and exit")
		traceOut = flag.String("trace", "-", "write the event trace here (- = stdout)")
		quiet    = flag.Bool("q", false, "suppress the stdout trace (a -trace file is still written)")
		mux      = flag.Bool("mux", true, "pool one RSYN v3 carrier per peer; -mux=false dials a connection per session (v2 behavior)")
	)
	flag.Parse()

	if *list {
		for _, sc := range scenario.Builtin() {
			fmt.Printf("%-20s %3d nodes %2d sets <=%2d rounds  %s\n",
				sc.Name, sc.Nodes, len(sc.Sets), sc.Rounds, oneLine(sc.Desc, 100))
		}
		return
	}
	sc, ok := scenario.Lookup(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "simulate: unknown scenario %q (try -list)\n", *name)
		os.Exit(2)
	}
	if !*mux {
		sc.DisableMux = true
	}
	res, err := scenario.Run(sc, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(2)
	}
	// -q only silences stdout; an explicitly requested trace file is
	// always written (capturing the repro artifact of a quiet soak).
	text := res.TraceText()
	switch {
	case *traceOut != "-" && *traceOut != "":
		if err := os.WriteFile(*traceOut, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "simulate: writing trace: %v\n", err)
			os.Exit(2)
		}
	case !*quiet:
		fmt.Print(text)
	}
	status := "ok"
	if !res.Ok() {
		status = fmt.Sprintf("FAILED (%d invariant violations)", len(res.Failures))
	}
	fmt.Fprintf(os.Stderr, "simulate: %s seed=%d rounds=%d converged=%d sessions=%d dials=%d: %s\n",
		res.Scenario, res.Seed, res.RoundsRun, res.ConvergedRound, res.Sessions, res.Dials, status)
	if !res.Ok() {
		for _, f := range res.Failures {
			fmt.Fprintf(os.Stderr, "  - %s\n", f)
		}
		os.Exit(1)
	}
}

// oneLine truncates a description at the last sentence or word boundary
// that fits in max runes, so -list stays one line per scenario.
func oneLine(s string, max int) string {
	if len(s) <= max {
		return s
	}
	cut := s[:max]
	if i := strings.LastIndex(cut, ". "); i > max/2 {
		return cut[:i+1]
	}
	if i := strings.LastIndexByte(cut, ' '); i > 0 {
		cut = cut[:i]
	}
	return cut + "…"
}
